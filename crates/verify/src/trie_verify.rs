//! Trie-based verification (paper §6.2).
//!
//! [`TrieVerifier`] materialises the instance trie `T_R` of the probe
//! **once** and reuses it for every candidate `S` of the probe. For a
//! candidate, it walks the logical trie `T_S` depth-first *without
//! materialising it*: a prefix's children are visited only while the
//! prefix's active set (nodes of `T_R` within distance `k`) is non-empty,
//! so whole families of `S`-worlds sharing a hopeless prefix are skipped
//! at once. At an `S`-leaf, every *leaf* in the active set is a similar
//! world pair and contributes `p(s)·p(r)` to `Pr(ed(R,S) ≤ k)`.
//!
//! Early termination (optional): accept as soon as the accumulated mass
//! exceeds `τ`; reject as soon as accumulated + unexplored mass drops to
//! `≤ τ`.

use usj_model::{Prob, UncertainString};

use crate::active::ActiveSet;
use crate::trie::InstanceTrie;

/// Statistics of one verification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerifyStats {
    /// Logical `T_S` nodes whose active set was computed.
    pub s_nodes_expanded: u64,
    /// Logical `T_S` subtrees pruned by an empty active set.
    pub s_subtrees_pruned: u64,
    /// `S`-leaves reached (worlds of S actually examined).
    pub s_leaves_reached: u64,
}

/// Result of trie-based verification.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyOutcome {
    /// `true` when `Pr(ed ≤ k) > τ`.
    pub similar: bool,
    /// Accumulated similar mass at the decision point (exact when early
    /// termination is off or never fired).
    pub prob: Prob,
    /// Work counters.
    pub stats: VerifyStats,
}

/// Verifier holding the probe's trie, reusable across all candidates of
/// the probe (the paper amortises `T_R` construction the same way).
#[derive(Debug, Clone)]
pub struct TrieVerifier {
    trie: InstanceTrie,
    k: usize,
    tau: Prob,
    early_stop: bool,
}

impl TrieVerifier {
    /// Builds the verifier for probe `r`; `None` if the probe's trie
    /// exceeds `max_nodes`.
    pub fn new(r: &UncertainString, k: usize, tau: Prob, max_nodes: usize) -> Option<TrieVerifier> {
        assert!((0.0..=1.0).contains(&tau), "tau must lie in [0, 1]");
        Some(TrieVerifier {
            trie: InstanceTrie::build(r, max_nodes)?,
            k,
            tau,
            early_stop: true,
        })
    }

    /// Disables early termination so `prob` is always the exact
    /// probability (used by tests and the verification ablation).
    pub fn without_early_stop(mut self) -> Self {
        self.early_stop = false;
        self
    }

    /// The probe trie (exposed for diagnostics/benchmarks).
    pub fn trie(&self) -> &InstanceTrie {
        &self.trie
    }

    /// Verifies one candidate.
    pub fn verify(&self, s: &UncertainString) -> VerifyOutcome {
        let mut stats = VerifyStats::default();
        if s.len().abs_diff(self.trie.string_len()) > self.k {
            return VerifyOutcome {
                similar: false,
                prob: 0.0,
                stats,
            };
        }
        let initial = ActiveSet::initial(&self.trie, self.k);
        let mut walker = Walker {
            verifier: self,
            s,
            acc: 0.0,
            explored: 0.0,
            stats: &mut stats,
            decided: None,
        };
        walker.dfs(0, 1.0, &initial);
        let decided = walker.decided;
        let acc = walker.acc;
        match decided {
            Some(similar) => VerifyOutcome {
                similar,
                prob: acc,
                stats,
            },
            None => VerifyOutcome {
                similar: acc > self.tau,
                prob: acc,
                stats,
            },
        }
    }
}

struct Walker<'a> {
    verifier: &'a TrieVerifier,
    s: &'a UncertainString,
    /// Accumulated similar mass.
    acc: Prob,
    /// Mass of S-prefixes fully resolved (explored to leaves or pruned).
    explored: Prob,
    stats: &'a mut VerifyStats,
    decided: Option<bool>,
}

impl Walker<'_> {
    /// Depth-first walk over the logical trie of `S`.
    ///
    /// `depth` = number of fixed S characters, `prefix_prob` = probability
    /// of the current S prefix, `active` = A(prefix).
    fn dfs(&mut self, depth: usize, prefix_prob: Prob, active: &ActiveSet) {
        if self.decided.is_some() {
            return;
        }
        self.stats.s_nodes_expanded += 1;
        if depth == self.s.len() {
            // Full S instance: every leaf in the active set is a world of
            // R within distance k.
            self.stats.s_leaves_reached += 1;
            let mut leaf_mass = 0.0;
            for &(id, _) in active.entries() {
                if self.verifier.trie.is_leaf(id) {
                    leaf_mass += self.verifier.trie.node(id).prob;
                }
            }
            self.acc += prefix_prob * leaf_mass;
            self.explored += prefix_prob;
            self.check_termination();
            return;
        }
        for (sym, p) in self.s.position(depth).alternatives() {
            if self.decided.is_some() {
                return;
            }
            let child_prob = prefix_prob * p;
            let next = active.advance(&self.verifier.trie, sym, self.verifier.k);
            if next.is_empty() {
                // No extension of this prefix can be similar: prune the
                // whole subtree (and all worlds below it).
                self.stats.s_subtrees_pruned += 1;
                self.explored += child_prob;
                self.check_termination();
            } else {
                self.dfs(depth + 1, child_prob, &next);
            }
        }
    }

    fn check_termination(&mut self) {
        if !self.verifier.early_stop {
            return;
        }
        if self.acc > self.verifier.tau {
            self.decided = Some(true);
        } else if self.acc + (1.0 - self.explored) <= self.verifier.tau {
            // Even if every unexplored world matched with full R mass the
            // threshold is out of reach.
            self.decided = Some(false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_verify;
    use crate::oracle::exact_similarity_prob;
    use usj_model::Alphabet;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    const CASES: &[(&str, &str)] = &[
        ("ACGT", "ACGT"),
        ("ACGT", "AGGT"),
        ("AAAA", "TTTT"),
        ("A{(C,0.5),(G,0.5)}GT", "ACG{(T,0.4),(A,0.6)}"),
        ("{(A,0.9),(T,0.1)}CGT", "ACG{(T,0.5),(G,0.5)}"),
        (
            "{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}GT",
            "{(A,0.3),(C,0.7)}AG{(T,0.8),(G,0.2)}",
        ),
        ("ACGTACGT", "ACG{(T,0.5),(A,0.5)}ACGT"),
    ];

    #[test]
    fn exact_probability_without_early_stop() {
        for (rt, st) in CASES {
            let (r, s) = (dna(rt), dna(st));
            for k in 0..3 {
                let v = TrieVerifier::new(&r, k, 0.5, 100_000)
                    .unwrap()
                    .without_early_stop();
                let out = v.verify(&s);
                let exact = exact_similarity_prob(&r, &s, k);
                assert!(
                    (out.prob - exact).abs() < 1e-9,
                    "{rt} vs {st} k={k}: trie={} exact={exact}",
                    out.prob
                );
            }
        }
    }

    #[test]
    fn early_stop_agrees_with_naive() {
        for (rt, st) in CASES {
            let (r, s) = (dna(rt), dna(st));
            for k in 0..3 {
                // τ values chosen off the exact-probability lattice of the
                // cases above; a τ exactly equal to Pr(ed ≤ k) is a
                // floating-point knife edge where either decision is
                // defensible.
                for tau in [0.01, 0.26, 0.61, 0.93] {
                    let v = TrieVerifier::new(&r, k, tau, 100_000).unwrap();
                    let trie_out = v.verify(&s);
                    let naive_out = naive_verify(&r, &s, k, tau, false);
                    assert_eq!(
                        trie_out.similar, naive_out.similar,
                        "{rt} vs {st} k={k} tau={tau}: trie={trie_out:?} naive={naive_out:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn pruning_reduces_leaf_visits() {
        // S has 2^6 worlds but shares a hopeless prefix with R on most of
        // them.
        let r = dna("AAAAAAAA");
        let s = dna("{(T,0.5),(G,0.5)}{(T,0.5),(G,0.5)}{(T,0.5),(G,0.5)}\
             {(T,0.5),(G,0.5)}{(T,0.5),(G,0.5)}{(T,0.5),(G,0.5)}AA");
        let v = TrieVerifier::new(&r, 2, 0.0, 100_000)
            .unwrap()
            .without_early_stop();
        let out = v.verify(&s);
        assert_eq!(out.prob, 0.0);
        assert!(!out.similar);
        assert!(
            out.stats.s_leaves_reached < 64,
            "expected prefix pruning, visited {} leaves",
            out.stats.s_leaves_reached
        );
        assert!(out.stats.s_subtrees_pruned > 0);
    }

    #[test]
    fn early_accept_stops_quickly() {
        let r = dna("{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}GTGT");
        let v = TrieVerifier::new(&r, 2, 0.05, 100_000).unwrap();
        let out = v.verify(&r);
        assert!(out.similar);
        let full = TrieVerifier::new(&r, 2, 0.05, 100_000)
            .unwrap()
            .without_early_stop()
            .verify(&r);
        assert!(out.stats.s_nodes_expanded < full.stats.s_nodes_expanded);
    }

    #[test]
    fn length_gap_short_circuits() {
        let v = TrieVerifier::new(&dna("ACGT"), 1, 0.5, 1000).unwrap();
        let out = v.verify(&dna("ACGTACGT"));
        assert!(!out.similar);
        assert_eq!(out.stats.s_nodes_expanded, 0);
    }

    #[test]
    fn trie_cap_respected() {
        let r = dna("{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}");
        assert!(TrieVerifier::new(&r, 1, 0.5, 4).is_none());
    }

    #[test]
    fn empty_strings() {
        let e = UncertainString::empty();
        let v = TrieVerifier::new(&e, 0, 0.5, 10).unwrap();
        let out = v.verify(&e);
        assert!(out.similar);
        assert!((out.prob - 1.0).abs() < 1e-12);
    }
}
