//! Incremental active-node sets (paper §6.2, after Ji et al.'s fuzzy
//! search).
//!
//! For a fixed trie `T_R` and a growing probe prefix `u`, the *active set*
//! `A(u)` is the set of trie nodes `v` with `ed(u, v) ≤ k`, annotated with
//! that distance. It satisfies the recurrence
//!
//! ```text
//! ed(u·c, v·x) = min( ed(u, v) + [c ≠ x]   — substitute/match
//!               ,     ed(u, v·x) + 1       — delete c
//!               ,     ed(u·c, v) + 1 )     — insert x
//! ```
//!
//! so `A(u·c)` is computable from `A(u)` alone: the first two cases read
//! the old set; the third propagates *within* the new set from parents to
//! children, which a single ascending-id pass handles because the arena
//! stores parents before children.

use std::collections::BTreeMap;

use crate::trie::InstanceTrie;
use usj_model::Symbol;

/// Active set: trie node ids with their edit distance to the current
/// probe prefix, only entries with distance ≤ k.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveSet {
    /// `(node id, distance)` sorted by node id.
    entries: Vec<(u32, u8)>,
}

impl ActiveSet {
    /// The active set of the *empty* probe prefix: every node of depth
    /// `d ≤ k` with distance `d` (deleting all its characters).
    pub fn initial(trie: &InstanceTrie, k: usize) -> ActiveSet {
        let mut entries = Vec::new();
        // Nodes are in DFS order; depth filter suffices.
        for id in 0..trie.num_nodes() as u32 {
            let depth = trie.node(id).depth as usize;
            if depth <= k {
                entries.push((id, depth as u8));
            }
        }
        entries.sort_unstable_by_key(|&(id, _)| id);
        ActiveSet { entries }
    }

    /// Entries as `(node id, distance)`, ascending by id.
    pub fn entries(&self) -> &[(u32, u8)] {
        &self.entries
    }

    /// `true` when no node is within distance k — the probe prefix (and
    /// every extension of it) can be pruned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of active nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Distance of a specific node, if active.
    pub fn distance_of(&self, id: u32) -> Option<u8> {
        self.entries
            .binary_search_by_key(&id, |&(i, _)| i)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Computes `A(u·c)` from `A(u) = self`.
    pub fn advance(&self, trie: &InstanceTrie, c: Symbol, k: usize) -> ActiveSet {
        let kk = k as u8;
        let mut map: BTreeMap<u32, u8> = BTreeMap::new();
        let relax = |map: &mut BTreeMap<u32, u8>, id: u32, d: u8| {
            if d <= kk {
                map.entry(id)
                    .and_modify(|old| *old = (*old).min(d))
                    .or_insert(d);
            }
        };
        for &(v, d) in &self.entries {
            // Delete c: v stays, distance grows.
            relax(&mut map, v, d.saturating_add(1));
            // Match / substitute against each child edge.
            for &(x, child) in &trie.node(v).children {
                relax(&mut map, child, d + u8::from(x != c));
            }
        }
        // Insertion closure: propagate down the trie inside the new set.
        // Parents precede children in id order, so one ascending pass
        // (which may insert larger keys mid-iteration) suffices.
        let mut cursor = 0u32;
        while let Some((&v, &d)) = map.range(cursor..).next() {
            if d < kk {
                for &(_, child) in &trie.node(v).children {
                    let nd = d + 1;
                    map.entry(child)
                        .and_modify(|old| *old = (*old).min(nd))
                        .or_insert(nd);
                }
            }
            match v.checked_add(1) {
                Some(next) => cursor = next,
                None => break,
            }
        }
        ActiveSet {
            entries: map.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_model::{Alphabet, UncertainString};

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    /// Walks the probe through the active set and cross-checks every
    /// node's distance against a direct edit-distance computation.
    fn check_against_direct(target: &UncertainString, probe: &[u8], k: usize) {
        let trie = InstanceTrie::build(target, 100_000).unwrap();
        // Collect each node's prefix string by DFS.
        let mut prefixes: Vec<Vec<u8>> = vec![Vec::new(); trie.num_nodes()];
        let mut stack = vec![InstanceTrie::ROOT];
        while let Some(id) = stack.pop() {
            for &(sym, child) in &trie.node(id).children {
                let mut p = prefixes[id as usize].clone();
                p.push(sym);
                prefixes[child as usize] = p;
                stack.push(child);
            }
        }
        let mut active = ActiveSet::initial(&trie, k);
        for step in 0..=probe.len() {
            let prefix = &probe[..step];
            // Expected active set by brute force.
            let mut expected: Vec<(u32, u8)> = (0..trie.num_nodes() as u32)
                .filter_map(|id| {
                    let d = usj_editdist::edit_distance(prefix, &prefixes[id as usize]);
                    (d <= k).then_some((id, d as u8))
                })
                .collect();
            expected.sort_unstable_by_key(|&(id, _)| id);
            assert_eq!(
                active.entries(),
                expected.as_slice(),
                "step {step} prefix {prefix:?}"
            );
            if step < probe.len() {
                active = active.advance(&trie, probe[step], k);
            }
        }
    }

    #[test]
    fn matches_direct_on_deterministic_target() {
        let target = dna("ACGTA");
        check_against_direct(&target, &Alphabet::dna().encode("AGTA").unwrap(), 2);
        check_against_direct(&target, &Alphabet::dna().encode("TTTTT").unwrap(), 2);
        check_against_direct(&target, &[], 1);
    }

    #[test]
    fn matches_direct_on_uncertain_target() {
        let target = dna("A{(C,0.5),(G,0.5)}G{(T,0.7),(A,0.3)}");
        for probe in ["ACGT", "AGG", "CCCC", "AGGTA", "A"] {
            let enc = Alphabet::dna().encode(probe).unwrap();
            for k in 0..=2 {
                check_against_direct(&target, &enc, k);
            }
        }
    }

    #[test]
    fn empty_set_stays_empty() {
        let target = dna("AAAA");
        let trie = InstanceTrie::build(&target, 100).unwrap();
        let mut active = ActiveSet::initial(&trie, 1);
        let t = Alphabet::dna().symbol('T').unwrap();
        for _ in 0..4 {
            active = active.advance(&trie, t, 1);
        }
        assert!(active.is_empty());
        assert!(active.advance(&trie, t, 1).is_empty());
    }

    #[test]
    fn initial_set_depth_bound() {
        let target = dna("{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}GG");
        let trie = InstanceTrie::build(&target, 100).unwrap();
        let active = ActiveSet::initial(&trie, 2);
        for &(id, d) in active.entries() {
            assert_eq!(trie.node(id).depth as u8, d);
            assert!(d <= 2);
        }
        // root + 2 depth-1 + 4 depth-2 = 7 entries.
        assert_eq!(active.len(), 7);
    }

    #[test]
    fn distance_lookup() {
        let target = dna("AC");
        let trie = InstanceTrie::build(&target, 100).unwrap();
        let active = ActiveSet::initial(&trie, 1);
        assert_eq!(active.distance_of(InstanceTrie::ROOT), Some(0));
        assert_eq!(active.distance_of(999), None);
    }
}
