//! Tries over the possible instances of an uncertain string.
//!
//! A node at depth `d` represents one instance of the length-`d` prefix of
//! the string; leaves (depth = string length) are full possible worlds.
//! Node probabilities are the products of per-position probabilities along
//! the path, so a leaf's probability is its world's probability and an
//! inner node's probability is the total mass of the worlds below it.
//!
//! Nodes are stored in a flat arena in DFS order, which guarantees
//! `parent id < child id` — the property the active-set closure pass in
//! [`crate::active`] relies on.

use usj_model::{Prob, Symbol, UncertainString};

/// One trie node.
#[derive(Debug, Clone)]
pub struct TrieNode {
    /// Depth = number of characters on the path from the root.
    pub depth: u32,
    /// Edge label from the parent (unspecified for the root).
    pub symbol: Symbol,
    /// Probability mass of the subtree (product of position probabilities
    /// along the path).
    pub prob: Prob,
    /// Children as `(edge symbol, node id)`, sorted by symbol.
    pub children: Vec<(Symbol, u32)>,
}

/// Trie of all possible instances of an uncertain string.
#[derive(Debug, Clone)]
pub struct InstanceTrie {
    nodes: Vec<TrieNode>,
    len: usize,
}

impl InstanceTrie {
    /// Builds the full trie for `s`, or `None` if it would exceed
    /// `max_nodes` nodes (worlds grow exponentially with uncertain
    /// positions; the paper's experiments cap uncertain characters at 8).
    pub fn build(s: &UncertainString, max_nodes: usize) -> Option<InstanceTrie> {
        let mut nodes = Vec::new();
        nodes.push(TrieNode {
            depth: 0,
            symbol: 0,
            prob: 1.0,
            children: Vec::new(),
        });
        // Iterative DFS carrying (node id, depth, path probability).
        let mut stack = vec![0u32];
        while let Some(id) = stack.pop() {
            let depth = nodes[id as usize].depth as usize;
            if depth == s.len() {
                continue;
            }
            let parent_prob = nodes[id as usize].prob;
            let mut children = Vec::with_capacity(s.position(depth).num_alternatives());
            for (sym, p) in s.position(depth).alternatives() {
                if nodes.len() >= max_nodes {
                    return None;
                }
                let child = nodes.len() as u32;
                nodes.push(TrieNode {
                    depth: depth as u32 + 1,
                    symbol: sym,
                    prob: parent_prob * p,
                    children: Vec::new(),
                });
                children.push((sym, child));
                stack.push(child);
            }
            nodes[id as usize].children = children;
        }
        Some(InstanceTrie {
            nodes,
            len: s.len(),
        })
    }

    /// Length of the underlying string (= leaf depth).
    pub fn string_len(&self) -> usize {
        self.len
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves (= number of possible worlds).
    pub fn num_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.depth as usize == self.len)
            .count()
    }

    /// Access a node by id.
    #[inline]
    pub fn node(&self, id: u32) -> &TrieNode {
        &self.nodes[id as usize]
    }

    /// The root node id.
    pub const ROOT: u32 = 0;

    /// `true` when `id` is a leaf (full instance).
    #[inline]
    pub fn is_leaf(&self, id: u32) -> bool {
        self.node(id).depth as usize == self.len
    }

    /// Reconstructs the instance string for a node by walking up is not
    /// possible in the flat arena (no parent links); instead this walks
    /// *down* from the root following the highest-probability path — used
    /// only by diagnostics.
    pub fn most_probable_leaf(&self) -> (Vec<Symbol>, Prob) {
        let mut id = Self::ROOT;
        let mut out = Vec::with_capacity(self.len);
        while !self.is_leaf(id) {
            let node = self.node(id);
            let &(sym, child) = node
                .children
                .iter()
                .max_by(|a, b| {
                    let pa = self.node(a.1).prob;
                    let pb = self.node(b.1).prob;
                    pa.partial_cmp(&pb).unwrap()
                })
                .expect("inner nodes have children");
            out.push(sym);
            id = child;
        }
        (out, self.node(id).prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_model::Alphabet;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    #[test]
    fn deterministic_chain() {
        let t = InstanceTrie::build(&dna("ACGT"), 1000).unwrap();
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_leaves(), 1);
        assert_eq!(t.string_len(), 4);
        let (inst, p) = t.most_probable_leaf();
        assert_eq!(Alphabet::dna().decode(&inst), "ACGT");
        assert_eq!(p, 1.0);
    }

    #[test]
    fn branching_counts() {
        let s = dna("{(A,0.5),(C,0.5)}{(G,0.3),(T,0.7)}");
        let t = InstanceTrie::build(&s, 1000).unwrap();
        // root + 2 depth-1 + 4 depth-2.
        assert_eq!(t.num_nodes(), 7);
        assert_eq!(t.num_leaves(), 4);
    }

    #[test]
    fn leaf_probabilities_match_worlds() {
        let s = dna("{(A,0.2),(C,0.8)}G{(A,0.6),(T,0.4)}");
        let t = InstanceTrie::build(&s, 1000).unwrap();
        let leaf_total: f64 = (0..t.num_nodes() as u32)
            .filter(|&id| t.is_leaf(id))
            .map(|id| t.node(id).prob)
            .sum();
        assert!((leaf_total - 1.0).abs() < 1e-12);
        assert_eq!(t.num_leaves(), s.worlds().count());
    }

    #[test]
    fn parent_ids_precede_children() {
        let s = dna("{(A,0.5),(C,0.5)}{(G,0.3),(T,0.7)}{(A,0.5),(C,0.5)}");
        let t = InstanceTrie::build(&s, 1000).unwrap();
        for id in 0..t.num_nodes() as u32 {
            for &(_, child) in &t.node(id).children {
                assert!(child > id, "child {child} ≤ parent {id}");
            }
        }
    }

    #[test]
    fn node_cap() {
        let s = dna("{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}");
        assert!(InstanceTrie::build(&s, 5).is_none());
        assert!(InstanceTrie::build(&s, 1000).is_some());
    }

    #[test]
    fn empty_string_is_root_only() {
        let t = InstanceTrie::build(&UncertainString::empty(), 10).unwrap();
        assert_eq!(t.num_nodes(), 1);
        assert!(t.is_leaf(InstanceTrie::ROOT));
        assert_eq!(t.num_leaves(), 1);
    }
}
