//! Lazily materialised probe tries (our extension to §6.2).
//!
//! The paper builds the probe trie `T_R` *completely* before verification
//! ("we still need to build the trie TR completely") and lists improving
//! the trie-based verification as future work. This module implements the
//! natural improvement: `T_R` nodes are materialised **on demand**, the
//! first time an active set needs a node's children. Nodes outside every
//! active set — i.e. prefixes of `R` that are never within edit distance
//! `k` of any examined prefix of `S` — are never created, so verification
//! cost scales with the *similar region* of the two tries instead of with
//! the probe's world count. For a probe with 10 uncertain positions
//! (≈ 10M worlds) whose candidate shares no prefix, the eager trie
//! allocates millions of nodes; the lazy trie allocates a few hundred.
//!
//! Correctness is unchanged: the active-set transition is the same as
//! [`crate::active`], and the arena still allocates parents before
//! children, preserving the ascending-id closure pass.

use std::collections::BTreeMap;

use usj_model::{Prob, Symbol, UncertainString};

use crate::trie_verify::{VerifyOutcome, VerifyStats};

/// One lazily-expanded trie node.
#[derive(Debug, Clone)]
struct LazyNode {
    depth: u32,
    prob: Prob,
    /// `None` until the node is expanded.
    children: Option<Vec<(Symbol, u32)>>,
}

/// Trie over the instances of a probe string, materialised on demand.
#[derive(Debug, Clone)]
pub struct LazyTrie {
    probe: UncertainString,
    nodes: Vec<LazyNode>,
}

impl LazyTrie {
    /// Creates the trie with just the root.
    pub fn new(probe: UncertainString) -> LazyTrie {
        LazyTrie {
            probe,
            nodes: vec![LazyNode {
                depth: 0,
                prob: 1.0,
                children: None,
            }],
        }
    }

    /// Root node id.
    pub const ROOT: u32 = 0;

    /// Probe length (= leaf depth).
    pub fn string_len(&self) -> usize {
        self.probe.len()
    }

    /// Number of nodes materialised so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Probability mass of the subtree rooted at `id`.
    pub fn prob(&self, id: u32) -> Prob {
        self.nodes[id as usize].prob
    }

    /// Depth of node `id`.
    pub fn depth(&self, id: u32) -> u32 {
        self.nodes[id as usize].depth
    }

    /// `true` when `id` is a full instance of the probe.
    pub fn is_leaf(&self, id: u32) -> bool {
        self.nodes[id as usize].depth as usize == self.probe.len()
    }

    /// Children of `id`, materialising them on first access. Returns an
    /// owned (small, ≤ γ entries) vector to keep borrows simple.
    pub fn children(&mut self, id: u32) -> Vec<(Symbol, u32)> {
        let depth = self.nodes[id as usize].depth as usize;
        if depth == self.probe.len() {
            return Vec::new();
        }
        if self.nodes[id as usize].children.is_none() {
            let parent_prob = self.nodes[id as usize].prob;
            let mut created = Vec::with_capacity(self.probe.position(depth).num_alternatives());
            for (sym, p) in self.probe.position(depth).alternatives() {
                let child = self.nodes.len() as u32;
                self.nodes.push(LazyNode {
                    depth: depth as u32 + 1,
                    prob: parent_prob * p,
                    children: None,
                });
                created.push((sym, child));
            }
            self.nodes[id as usize].children = Some(created);
        }
        self.nodes[id as usize].children.clone().unwrap_or_default()
    }
}

/// Active set against a lazy trie (same semantics as
/// [`crate::active::ActiveSet`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LazyActiveSet {
    entries: Vec<(u32, u8)>,
}

impl LazyActiveSet {
    /// Active set of the empty prefix: nodes of depth ≤ k at distance =
    /// depth (materialising those top layers).
    pub fn initial(trie: &mut LazyTrie, k: usize) -> LazyActiveSet {
        let mut entries = vec![(LazyTrie::ROOT, 0u8)];
        let mut frontier = vec![LazyTrie::ROOT];
        for d in 1..=k {
            let mut next = Vec::new();
            for &v in &frontier {
                for (_, child) in trie.children(v) {
                    entries.push((child, d as u8));
                    next.push(child);
                }
            }
            frontier = next;
        }
        entries.sort_unstable_by_key(|&(id, _)| id);
        LazyActiveSet { entries }
    }

    /// `(node id, distance)` entries, ascending by id.
    pub fn entries(&self) -> &[(u32, u8)] {
        &self.entries
    }

    /// `true` when the set is empty (prefix prunable).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Computes `A(u·c)` from `A(u)`, expanding trie nodes as needed.
    pub fn advance(&self, trie: &mut LazyTrie, c: Symbol, k: usize) -> LazyActiveSet {
        let kk = k as u8;
        let mut map: BTreeMap<u32, u8> = BTreeMap::new();
        let relax = |map: &mut BTreeMap<u32, u8>, id: u32, d: u8| {
            if d <= kk {
                map.entry(id)
                    .and_modify(|old| *old = (*old).min(d))
                    .or_insert(d);
            }
        };
        for &(v, d) in &self.entries {
            relax(&mut map, v, d.saturating_add(1));
            // Match/substitute transitions only ever need children whose
            // distance can be ≤ k; expanding others would waste arena
            // space, so skip nodes already at the limit with no match
            // possible. (d + [x≠c] ≤ k requires d ≤ k always; when d = k
            // only an exact match keeps the child, so expansion is still
            // needed — hence no filter here beyond the relax guard.)
            for (x, child) in trie.children(v) {
                relax(&mut map, child, d + u8::from(x != c));
            }
        }
        // Insertion closure (parents precede children in id order).
        let mut cursor = 0u32;
        while let Some((&v, &d)) = map.range(cursor..).next() {
            if d < kk {
                for (_, child) in trie.children(v) {
                    let nd = d + 1;
                    map.entry(child)
                        .and_modify(|old| *old = (*old).min(nd))
                        .or_insert(nd);
                }
            }
            match v.checked_add(1) {
                Some(next) => cursor = next,
                None => break,
            }
        }
        LazyActiveSet {
            entries: map.into_iter().collect(),
        }
    }
}

/// Verifier over a lazily materialised probe trie — the default verifier
/// of the join driver.
#[derive(Debug, Clone)]
pub struct LazyTrieVerifier {
    trie: LazyTrie,
    k: usize,
    tau: Prob,
    early_stop: bool,
}

impl LazyTrieVerifier {
    /// Creates the verifier (cheap: only the root is materialised).
    pub fn new(probe: &UncertainString, k: usize, tau: Prob) -> LazyTrieVerifier {
        assert!((0.0..=1.0).contains(&tau), "tau must lie in [0, 1]");
        LazyTrieVerifier {
            trie: LazyTrie::new(probe.clone()),
            k,
            tau,
            early_stop: true,
        }
    }

    /// Disables early termination (`prob` becomes exact).
    pub fn without_early_stop(mut self) -> Self {
        self.early_stop = false;
        self
    }

    /// Nodes materialised so far (diagnostics/benchmarks).
    pub fn nodes_materialized(&self) -> usize {
        self.trie.num_nodes()
    }

    /// Verifies one candidate. `&mut self` because verification may
    /// materialise more of the probe trie (which later candidates reuse).
    pub fn verify(&mut self, s: &UncertainString) -> VerifyOutcome {
        let mut stats = VerifyStats::default();
        if s.len().abs_diff(self.trie.string_len()) > self.k {
            return VerifyOutcome {
                similar: false,
                prob: 0.0,
                stats,
            };
        }
        let initial = LazyActiveSet::initial(&mut self.trie, self.k);
        let mut ctx = LazyWalk {
            k: self.k,
            tau: self.tau,
            early_stop: self.early_stop,
            s,
            acc: 0.0,
            explored: 0.0,
            decided: None,
        };
        ctx.dfs(&mut self.trie, 0, 1.0, &initial, &mut stats);
        match ctx.decided {
            Some(similar) => VerifyOutcome {
                similar,
                prob: ctx.acc,
                stats,
            },
            None => VerifyOutcome {
                similar: ctx.acc > self.tau,
                prob: ctx.acc,
                stats,
            },
        }
    }
}

struct LazyWalk<'a> {
    k: usize,
    tau: Prob,
    early_stop: bool,
    s: &'a UncertainString,
    acc: Prob,
    explored: Prob,
    decided: Option<bool>,
}

impl LazyWalk<'_> {
    fn dfs(
        &mut self,
        trie: &mut LazyTrie,
        depth: usize,
        prefix_prob: Prob,
        active: &LazyActiveSet,
        stats: &mut VerifyStats,
    ) {
        if self.decided.is_some() {
            return;
        }
        stats.s_nodes_expanded += 1;
        if depth == self.s.len() {
            stats.s_leaves_reached += 1;
            let mut leaf_mass = 0.0;
            for &(id, _) in active.entries() {
                if trie.is_leaf(id) {
                    leaf_mass += trie.prob(id);
                }
            }
            self.acc += prefix_prob * leaf_mass;
            self.explored += prefix_prob;
            self.check_termination();
            return;
        }
        for (sym, p) in self.s.position(depth).alternatives() {
            if self.decided.is_some() {
                return;
            }
            let child_prob = prefix_prob * p;
            let next = active.advance(trie, sym, self.k);
            if next.is_empty() {
                stats.s_subtrees_pruned += 1;
                self.explored += child_prob;
                self.check_termination();
            } else {
                self.dfs(trie, depth + 1, child_prob, &next, stats);
            }
        }
    }

    fn check_termination(&mut self) {
        if !self.early_stop {
            return;
        }
        if self.acc > self.tau {
            self.decided = Some(true);
        } else if self.acc + (1.0 - self.explored) <= self.tau {
            self.decided = Some(false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::exact_similarity_prob;
    use crate::trie_verify::TrieVerifier;
    use usj_model::Alphabet;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    const CASES: &[(&str, &str)] = &[
        ("ACGT", "ACGT"),
        ("ACGT", "AGGT"),
        ("AAAA", "TTTT"),
        ("A{(C,0.5),(G,0.5)}GT", "ACG{(T,0.4),(A,0.6)}"),
        (
            "{(A,0.5),(C,0.5)}{(A,0.5),(C,0.5)}GT",
            "{(A,0.3),(C,0.7)}AG{(T,0.8),(G,0.2)}",
        ),
        ("ACGTACGT", "ACG{(T,0.5),(A,0.5)}ACGT"),
    ];

    #[test]
    fn lazy_equals_oracle_exact_mode() {
        for (rt, st) in CASES {
            let (r, s) = (dna(rt), dna(st));
            for k in 0..3 {
                let mut v = LazyTrieVerifier::new(&r, k, 0.5).without_early_stop();
                let out = v.verify(&s);
                let exact = exact_similarity_prob(&r, &s, k);
                assert!(
                    (out.prob - exact).abs() < 1e-9,
                    "{rt} vs {st} k={k}: lazy={} exact={exact}",
                    out.prob
                );
            }
        }
    }

    #[test]
    fn lazy_agrees_with_eager() {
        for (rt, st) in CASES {
            let (r, s) = (dna(rt), dna(st));
            for k in 0..3 {
                for tau in [0.01, 0.26, 0.61, 0.93] {
                    let eager = TrieVerifier::new(&r, k, tau, 1_000_000).unwrap().verify(&s);
                    let mut lazy = LazyTrieVerifier::new(&r, k, tau);
                    let got = lazy.verify(&s);
                    assert_eq!(got.similar, eager.similar, "{rt} {st} k={k} tau={tau}");
                }
            }
        }
    }

    #[test]
    fn dissimilar_pair_materialises_little() {
        // Probe with 4^8 = 65536 worlds vs a hopeless candidate: almost
        // nothing should be materialised.
        let many = "{(A,0.25),(C,0.25),(G,0.25),(T,0.25)}".repeat(8);
        let r = dna(&many);
        let s = dna("ACGTACGT"); // shares prefix regions but most subtrees die
        let mut v = LazyTrieVerifier::new(&r, 1, 0.3);
        let _ = v.verify(&s);
        assert!(
            v.nodes_materialized() < 4000,
            "materialised {} nodes",
            v.nodes_materialized()
        );
    }

    #[test]
    fn trie_reuse_across_candidates() {
        let r = dna("{(A,0.5),(C,0.5)}CGT{(A,0.5),(G,0.5)}CGT");
        let mut v = LazyTrieVerifier::new(&r, 2, 0.2);
        let out1 = v.verify(&dna("ACGTACGT"));
        let nodes_after_first = v.nodes_materialized();
        let out2 = v.verify(&dna("ACGTACGT"));
        assert_eq!(out1.similar, out2.similar);
        // Second identical verification cannot need new nodes.
        assert_eq!(v.nodes_materialized(), nodes_after_first);
    }

    #[test]
    fn length_gap_short_circuits() {
        let mut v = LazyTrieVerifier::new(&dna("ACGT"), 1, 0.5);
        assert!(!v.verify(&dna("ACGTACGT")).similar);
    }
}
