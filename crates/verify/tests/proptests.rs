//! Property tests: trie verification is exactly the possible-world oracle.

use proptest::prelude::*;
use usj_model::{Position, UncertainString};
use usj_verify::{
    exact_similarity_prob, naive_verify, ActiveSet, InstanceTrie, LazyTrieVerifier, TrieVerifier,
};

fn arb_position(sigma: u8, max_alts: usize) -> impl Strategy<Value = Position> {
    prop::collection::vec((0..sigma, 1u32..=100), 1..=max_alts).prop_map(|raw| {
        let mut seen = std::collections::BTreeMap::new();
        for (s, w) in raw {
            *seen.entry(s).or_insert(0u32) += w;
        }
        let total: u32 = seen.values().sum();
        let alts: Vec<(u8, f64)> = seen
            .into_iter()
            .map(|(s, w)| (s, w as f64 / total as f64))
            .collect();
        Position::uncertain(0, alts).unwrap()
    })
}

fn arb_string(sigma: u8, len: std::ops::Range<usize>) -> impl Strategy<Value = UncertainString> {
    prop::collection::vec(arb_position(sigma, 2), len).prop_map(UncertainString::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Trie verification without early stop computes the oracle exactly.
    #[test]
    fn trie_equals_oracle(
        r in arb_string(3, 0..7),
        s in arb_string(3, 0..7),
        k in 0usize..3,
    ) {
        let exact = exact_similarity_prob(&r, &s, k);
        let v = TrieVerifier::new(&r, k, 0.5, 1_000_000).unwrap().without_early_stop();
        let out = v.verify(&s);
        prop_assert!((out.prob - exact).abs() < 1e-9, "trie={} oracle={exact}", out.prob);
    }

    /// Early-stop decisions equal full decisions for any τ.
    #[test]
    fn early_stop_decision_correct(
        r in arb_string(3, 1..7),
        s in arb_string(3, 1..7),
        k in 0usize..3,
        tau_pct in 1u32..99,
    ) {
        // Perturb τ off exact-probability ties (see DESIGN.md):
        let tau = tau_pct as f64 / 100.0 + 1e-4;
        let exact = exact_similarity_prob(&r, &s, k);
        prop_assume!((exact - tau).abs() > 1e-6);
        let v = TrieVerifier::new(&r, k, tau, 1_000_000).unwrap();
        let out = v.verify(&s);
        prop_assert_eq!(out.similar, exact > tau, "exact={} tau={} out={:?}", exact, tau, out);
    }

    /// Naive verification with early stop matches the oracle decision.
    #[test]
    fn naive_early_stop_correct(
        r in arb_string(3, 1..7),
        s in arb_string(3, 1..7),
        k in 0usize..3,
        tau_pct in 1u32..99,
    ) {
        let tau = tau_pct as f64 / 100.0 + 1e-4;
        let exact = exact_similarity_prob(&r, &s, k);
        prop_assume!((exact - tau).abs() > 1e-6);
        let out = naive_verify(&r, &s, k, tau, true);
        prop_assert_eq!(out.similar, exact > tau);
    }

    /// Active sets advanced character-by-character always agree with
    /// direct edit distances to every trie prefix.
    #[test]
    fn active_sets_are_exact(
        target in arb_string(3, 1..6),
        probe in prop::collection::vec(0u8..3, 0..7),
        k in 0usize..3,
    ) {
        let trie = InstanceTrie::build(&target, 1_000_000).unwrap();
        // Prefix strings per node.
        let mut prefixes: Vec<Vec<u8>> = vec![Vec::new(); trie.num_nodes()];
        let mut stack = vec![InstanceTrie::ROOT];
        while let Some(id) = stack.pop() {
            for &(sym, child) in &trie.node(id).children {
                let mut p = prefixes[id as usize].clone();
                p.push(sym);
                prefixes[child as usize] = p;
                stack.push(child);
            }
        }
        let mut active = ActiveSet::initial(&trie, k);
        for step in 0..=probe.len() {
            let prefix = &probe[..step];
            for id in 0..trie.num_nodes() as u32 {
                let d = usj_editdist::edit_distance(prefix, &prefixes[id as usize]);
                let got = active.distance_of(id);
                if d <= k {
                    prop_assert_eq!(got, Some(d as u8), "node {} prefix {:?}", id, prefix);
                } else {
                    prop_assert_eq!(got, None, "node {} prefix {:?}", id, prefix);
                }
            }
            if step < probe.len() {
                active = active.advance(&trie, probe[step], k);
            }
        }
    }

    /// The lazy trie verifier computes the oracle exactly (no early stop)
    /// and agrees with the eager verifier's decisions under early stop.
    #[test]
    fn lazy_equals_oracle_and_eager(
        r in arb_string(3, 0..7),
        s in arb_string(3, 0..7),
        k in 0usize..3,
        tau_pct in 1u32..99,
    ) {
        let exact = exact_similarity_prob(&r, &s, k);
        let mut lazy = LazyTrieVerifier::new(&r, k, 0.5).without_early_stop();
        let out = lazy.verify(&s);
        prop_assert!((out.prob - exact).abs() < 1e-9, "lazy={} oracle={}", out.prob, exact);

        let tau = tau_pct as f64 / 100.0 + 1e-4;
        prop_assume!((exact - tau).abs() > 1e-6);
        let mut lazy = LazyTrieVerifier::new(&r, k, tau);
        prop_assert_eq!(lazy.verify(&s).similar, exact > tau);
    }

    /// Verifying several candidates against one lazy verifier (trie
    /// reuse) gives the same answers as fresh verifiers.
    #[test]
    fn lazy_trie_reuse_is_stateless(
        r in arb_string(3, 1..6),
        candidates in prop::collection::vec(arb_string(3, 1..6), 1..4),
        k in 0usize..3,
    ) {
        let mut shared = LazyTrieVerifier::new(&r, k, 0.3);
        for s in &candidates {
            let shared_out = shared.verify(s);
            let mut fresh = LazyTrieVerifier::new(&r, k, 0.3);
            let fresh_out = fresh.verify(s);
            prop_assert_eq!(shared_out.similar, fresh_out.similar);
            prop_assert!((shared_out.prob - fresh_out.prob).abs() < 1e-9);
        }
    }

    /// The trie verifier's accumulated probability is always a valid
    /// probability and the leaf mass of the trie is 1.
    #[test]
    fn trie_mass_conservation(r in arb_string(4, 0..7)) {
        let trie = InstanceTrie::build(&r, 1_000_000).unwrap();
        let leaf_mass: f64 = (0..trie.num_nodes() as u32)
            .filter(|&id| trie.is_leaf(id))
            .map(|id| trie.node(id).prob)
            .sum();
        prop_assert!((leaf_mass - 1.0).abs() < 1e-9);
        prop_assert_eq!(trie.num_leaves() as f64, r.num_worlds());
    }
}
