//! Guards re-scoped or dropped before every hazard: clean.
pub fn scoped_ok(m: &std::sync::Mutex<Vec<u8>>) {
    {
        let guard = m.lock().unwrap();
        let _ = guard.len();
    }
    std::thread::sleep(pause());
}

pub fn dropped_ok(m: &std::sync::Mutex<Vec<u8>>) {
    let guard = m.lock().unwrap();
    drop(guard);
    std::thread::sleep(pause());
}

fn pause() -> std::time::Duration {
    std::time::Duration::from_millis(1)
}
