//! Fault-suite side of the fixture.
#[test]
fn drives_recovery() {
    run(Some("core.step#0=panic"));
    run(Some("ghost.point#0=panic"));
    assert!(fired("core.helper"));
}
