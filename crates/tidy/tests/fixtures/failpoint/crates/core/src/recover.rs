//! Recovery sites carry failpoints; the economy must balance.
pub fn covered_step() -> bool {
    fail_point!("core.step");
    catch_unwind(|| step()).is_ok()
}

pub fn wrapped_step() -> bool {
    catch_unwind(|| fire_helper()).is_ok()
}

fn fire_helper() {
    fail_point!("core.helper");
}

pub fn bare_shield() -> bool {
    catch_unwind(|| step()).is_ok()
}

pub fn orphan_point() {
    fail_point!("core.orphan");
}

fn step() {}
