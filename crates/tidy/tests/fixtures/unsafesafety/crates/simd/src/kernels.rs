//! Mentions `unsafe` in prose — comments never fire.
pub fn dispatch(prev: &[f64], cur: &mut [f64]) {
    // safety: the slices are the same length by construction.
    unsafe { kernel(prev, cur) }
}

pub fn bare(prev: &[f64], cur: &mut [f64]) {
    unsafe { kernel(prev, cur) }
}

/// Declarations impose the obligation; no comment required here.
pub unsafe fn kernel(_prev: &[f64], _cur: &mut [f64]) {}

pub fn far_comment(prev: &[f64], cur: &mut [f64]) {
    // safety: five lines up is out of reach — keep the proof adjacent.
    let a = 1;
    let b = 2;
    let c = 3;
    let d = 4;
    let _ = (a, b, c, d);
    unsafe { kernel(prev, cur) }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        unsafe { super::kernel(&[], &mut []) }
    }
}
