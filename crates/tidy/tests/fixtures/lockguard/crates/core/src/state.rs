//! Guard scopes must end before hazards.
pub fn flush_held(m: &std::sync::Mutex<Vec<u8>>) {
    let guard = m.lock().unwrap();
    std::thread::sleep(pause());
    drop(guard);
}

pub fn scoped_ok(m: &std::sync::Mutex<Vec<u8>>) {
    {
        let guard = m.lock().unwrap();
        let _ = guard.len();
    }
    std::thread::sleep(pause());
}

pub fn dropped_ok(m: &std::sync::Mutex<Vec<u8>>) {
    let guard = m.lock().unwrap();
    drop(guard);
    std::thread::sleep(pause());
}

pub fn reader_held(l: &std::sync::RwLock<u64>, input: &mut impl std::io::BufRead) {
    let snapshot = l.read().unwrap();
    let mut line = String::new();
    let _ = input.read_line(&mut line);
    let _ = *snapshot;
}

fn pause() -> std::time::Duration {
    std::time::Duration::from_millis(1)
}
