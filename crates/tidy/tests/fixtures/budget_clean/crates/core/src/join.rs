//! Every probe loop consults its budget: clean.
pub fn probe_join(probe: &[u8], budget: &ProbeBudget) -> usize {
    let mut out = 0;
    for b in probe {
        if budget.exhausted() {
            break;
        }
        out += *b as usize;
    }
    while out > 0 && !budget.exhausted() {
        out -= 1;
    }
    out
}
