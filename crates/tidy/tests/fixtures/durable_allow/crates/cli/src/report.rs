//! Fixture: one allowlisted raw write, one unexcused.
pub fn spill_scratch(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    std::fs::write(path, text.trim_end())
}

pub fn spill_other(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    std::fs::write(path, text)
}
