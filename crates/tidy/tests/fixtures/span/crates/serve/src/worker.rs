//! A stray exit: closing a span this file never opened.

pub fn answer(rec: &mut impl Recorder) {
    rec.exit_phase(Phase::Total, started.elapsed());
}
