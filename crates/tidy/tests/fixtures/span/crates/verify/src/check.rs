//! Outside the lint's scope: no span-paired diagnostics here.

pub fn unbalanced(rec: &mut impl Recorder) {
    rec.enter_phase(Phase::Verify);
}
