//! Span-pairing fixture: early exits and EOF leaks fire; balanced pairs,
//! comments, tests, and RAII `PhaseGuard` spans stay silent.

pub fn leaky(rec: &mut impl Recorder) -> Result<u32, Error> {
    rec.enter_phase(Phase::Index);
    let rows = load_rows()?;
    if rows == 0 {
        return Err(Error::Empty);
    }
    rec.exit_phase(Phase::Index, started.elapsed());
    Ok(rows)
}

pub fn balanced(rec: &mut impl Recorder) {
    rec.enter_phase(Phase::Total);
    rec.exit_phase(Phase::Total, started.elapsed());
}

// A comment mentioning rec.enter_phase( does not open a span.
pub fn guarded(rec: &mut impl Recorder) -> Result<u32, Error> {
    let _span = PhaseGuard::enter(rec, Phase::Verify);
    let rows = load_rows()?;
    Ok(rows)
}

pub fn leaks_at_eof(rec: &mut impl Recorder) {
    rec.enter_phase(Phase::CdfFilter);
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_span_freely() {
        let mut rec = NoopRecorder;
        rec.enter_phase(Phase::Index);
    }
}
