pub fn kernel(x: f64) {
    if x < 0.0 {
        panic!("negative");
    }
}
