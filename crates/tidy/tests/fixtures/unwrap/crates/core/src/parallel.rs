//! Fixture: hot-path file with panicking combinators.
/// Doc example with value.unwrap() — must not flag (comment).
pub fn hot(v: Option<u32>) -> u32 {
    let a = v.unwrap();
    let b = v.expect("reason");
    a + b
}
#[cfg(test)]
mod tests {
    fn in_test(v: Option<u32>) {
        v.unwrap();
    }
}
