pub fn kernel(v: Option<u32>) -> u32 {
    v.expect("bounds are non-empty by construction")
}
