//! Out of the lint's scope: crates/verify writes no durable artifacts.
pub fn dump(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    std::fs::write(path, text)
}
