//! Fixture: raw file writes outside the durable helper.
use std::fs::File;

pub fn save_report(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    std::fs::write(path, text)
}

pub fn open_log(path: &std::path::Path) -> std::io::Result<File> {
    File::create(path)
}

pub fn reserve(path: &std::path::Path) -> std::io::Result<File> {
    File::create_new(path)
}

/// The helper owns the raw calls: write a temporary, then rename.
pub fn durable_atomic_write(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    let file = File::create(&tmp)?;
    drop(file);
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

// A comment mentioning fs::write( must not fire.

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_files_are_fine() {
        std::fs::write("/tmp/usj-fixture-scratch", "x").unwrap();
        let _ = std::fs::File::create("/tmp/usj-fixture-scratch2");
    }
}
