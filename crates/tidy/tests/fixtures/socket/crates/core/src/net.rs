// Not under crates/serve/src/: blocking reads here are out of scope.
pub fn slurp(r: &mut impl std::io::Read) -> String {
    let mut s = String::new();
    r.read_to_string(&mut s).ok();
    s
}
