use std::io::Read;
// A comment mentioning .read_line( must never fire the lint.
pub fn attempt(stream: &mut std::net::TcpStream) {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(1))).ok();
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).ok(); // bounded: timeout above
}
#[cfg(test)]
mod tests {
    #[test]
    fn test_code_reads_freely() {
        let mut s = String::new();
        std::io::stdin().read_line(&mut s).ok();
    }
}
