use std::io::{BufRead, BufReader};
/// An argument-less `.read()` is an RwLock guard, not socket IO.
pub fn epoch(gen: &std::sync::RwLock<u64>) -> u64 {
    *gen.read().unwrap()
}
pub fn handle(stream: std::net::TcpStream) {
    let mut reader = BufReader::new(&stream);
    let mut line = String::new();
    reader.read_line(&mut line).ok();
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5))).ok();
    reader.read_line(&mut line).ok();
}
