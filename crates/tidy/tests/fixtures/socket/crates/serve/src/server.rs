use std::io::{BufRead, BufReader};
pub fn handle(stream: std::net::TcpStream) {
    let mut reader = BufReader::new(&stream);
    let mut line = String::new();
    reader.read_line(&mut line).ok();
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5))).ok();
    reader.read_line(&mut line).ok();
}
