//! Fixture: every path to disk goes through the durable helpers.
use std::fs::File;

/// Full-control variant, `File::create` and all — exempt by name.
pub fn durable_atomic_write_full(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    let file = File::create(&tmp)?;
    drop(file);
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

pub fn save_snapshot(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    durable_atomic_write_full(path, text)
}

/// An argument-less `.write()` is an RwLock guard, not file I/O.
pub fn swap(slot: &std::sync::RwLock<String>, next: String) {
    *slot.write().unwrap_or_else(std::sync::PoisonError::into_inner) = next;
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_write_directly() {
        std::fs::write("/tmp/usj-fixture-clean", "x").unwrap();
    }
}
