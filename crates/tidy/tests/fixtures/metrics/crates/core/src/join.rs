pub fn record() {
    emit(Counter::Alpha);
    emit(Counter::Gamma);
    measure(Gauge::Bytes);
}
