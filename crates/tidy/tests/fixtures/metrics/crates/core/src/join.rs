pub fn record() {
    emit(Counter::Alpha);
    emit(Counter::Gamma);
    emit(Counter::Delta);
    emit(Counter::FaultsInjected);
    emit(Counter::WavesResumed);
    emit(Counter::ServeShed);
    measure(Gauge::Bytes);
}
