pub enum Counter {
    Alpha,
    Beta,
    Delta,
    FaultsInjected,
    WavesResumed,
    ServeShed,
}
impl Counter {
    pub const ALL: [Counter; 5] = [
        Counter::Alpha,
        Counter::Delta,
        Counter::FaultsInjected,
        Counter::WavesResumed,
        Counter::ServeShed,
    ];
    pub const fn name(self) -> &'static str {
        match self {
            Counter::Alpha => "alpha_total",
            Counter::Beta => "beta_total",
            Counter::Delta => "delta_total",
            Counter::FaultsInjected => "faults_injected",
            Counter::WavesResumed => "waves_resumed",
            Counter::ServeShed => "serve_shed",
        }
    }
}
pub enum Gauge {
    Bytes,
}
impl Gauge {
    pub const ALL: [Gauge; 1] = [Gauge::Bytes];
    pub const fn name(self) -> &'static str {
        match self {
            Gauge::Bytes => "bytes",
        }
    }
}
