pub enum Counter {
    Alpha,
    Beta,
}
impl Counter {
    pub const ALL: [Counter; 1] = [Counter::Alpha];
    pub const fn name(self) -> &'static str {
        match self {
            Counter::Alpha => "alpha_total",
            Counter::Beta => "beta_total",
        }
    }
}
pub enum Gauge {
    Bytes,
}
impl Gauge {
    pub const ALL: [Gauge; 1] = [Gauge::Bytes];
    pub const fn name(self) -> &'static str {
        match self {
            Gauge::Bytes => "bytes",
        }
    }
}
