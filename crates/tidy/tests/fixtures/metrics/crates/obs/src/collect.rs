// Golden schema test fixture: the fault-tolerance counters are pinned
// alongside alpha and bytes; the delta and beta keys are deliberately
// absent (the lint scans this file's full text, comments included).
pub const GOLDEN: &str = r#"{"alpha_total": 0, "faults_injected": 0, "waves_resumed": 0, "serve_shed": 0, "bytes": 0}"#;
