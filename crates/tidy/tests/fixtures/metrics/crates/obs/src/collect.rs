// Golden schema test fixture: only "alpha_total" and "bytes" are pinned.
pub const GOLDEN: &str = r#"{"alpha_total": 0, "bytes": 0}"#;
