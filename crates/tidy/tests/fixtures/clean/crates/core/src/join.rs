//! Fixture: a clean hot-path file.
pub fn probe(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}
