//! Multi-line chains and unchecked unwraps are still caught.
pub fn resolve(map: &Map) -> u32 {
    map.get(7)
        .copied()
        .unwrap()
}

pub fn fast_path(v: Option<u32>) -> u32 {
    // safety: the caller checked is_some.
    unsafe { v.unwrap_unchecked() }
}

pub fn noisy(v: Option<u32>, u: Option<u32>) -> u32 {
    v.unwrap().max(u.unwrap())
}

pub fn labelled(map: &Map) -> u32 {
    map.get(9)
        .expect(
            "index 9 is seeded",
        )
}
