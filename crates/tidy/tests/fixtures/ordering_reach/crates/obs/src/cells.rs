//! The reach budget counts only code lines.
pub fn stamp(c: &AtomicU64, n: &AtomicU64) {
    // ordering: independent monotone counters; relaxed is enough
    // for a statistics cell that the scrape thread reads torn.

    // Blank and comment lines above must not starve the reach:
    // under the old line-counted window this site was a false
    // positive.
    c.fetch_add(1, Ordering::Relaxed);
    n.fetch_add(1, Ordering::Relaxed);
}

pub fn stale(c: &AtomicU64) {
    // ordering: too far above to govern the load below.
    let a = 1;
    let b = 2;
    let d = 3;
    let e = 4;
    let _ = (a, b, d, e);
    c.load(Ordering::Acquire);
}

pub fn prior(c: &AtomicU64) {
    // ordering: governs only this fn's store.
    c.store(0, Ordering::Release);
}

pub fn leaky(c: &AtomicU64) {
    c.load(Ordering::Acquire);
}
