//! Arms the one failpoint the source defines.
#[test]
fn drives_recovery() {
    run(Some("core.step#0=panic"));
}
