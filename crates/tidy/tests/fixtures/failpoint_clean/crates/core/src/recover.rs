//! Balanced failpoint economy: clean.
pub fn covered_step() -> bool {
    fail_point!("core.step");
    catch_unwind(|| step()).is_ok()
}

fn step() {}
