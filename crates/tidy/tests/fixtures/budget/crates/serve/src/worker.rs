//! Serve-side probe loops are budget-scoped too.
pub fn probe_backlog(items: &[u64]) -> u64 {
    let mut total = 0;
    for it in items {
        total += *it;
    }
    total
}

#[cfg(test)]
mod tests {
    #[test]
    fn search_everything() {
        for _ in 0..3 {}
    }
}
