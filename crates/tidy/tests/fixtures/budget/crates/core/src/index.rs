//! Probe loops must consult the budget; build loops are free.
pub fn probe_candidates(probe: &[u8], budget: &ProbeBudget) -> usize {
    let mut hits = 0;
    for len in 0..probe.len() {
        if budget.exhausted() {
            break;
        }
        hits += len;
    }
    while hits < 10 {
        hits += 1;
    }
    hits
}

pub fn search_shards(f: &dyn Fn(&u8) -> bool) -> usize {
    let _chk: &dyn for<'a> Fn(&'a u8) -> bool = &|x| f(x);
    let probe_deadline = 8;
    let mut n = 0;
    loop {
        if n >= probe_deadline {
            break;
        }
        n += 1;
    }
    n
}

pub fn build_rows(items: &[u8]) -> usize {
    let mut n = 0;
    for _ in items {
        n += 1;
    }
    n
}
