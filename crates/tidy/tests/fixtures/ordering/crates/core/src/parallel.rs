use std::sync::atomic::{AtomicUsize, Ordering};
pub fn claims(next: &AtomicUsize) -> usize {
    // ordering: the cursor is the only shared state; Relaxed suffices
    // because batch boundaries depend only on the value itself.
    let a = next.load(Ordering::Relaxed);
    let _ = match 1.cmp(&2) {
        std::cmp::Ordering::Less => 0,
        _ => 1,
    };
    let b = next.load(Ordering::Acquire);
    a + b
}
