//! Pins the `--emit=json` document shape byte-for-byte: CI tooling and
//! editor integrations parse this, so any drift must be a deliberate
//! schema bump.

use usj_tidy::{emit, Diagnostic};

fn diag(file: &str, line: usize, lint: &str, message: &str) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line,
        lint: lint.to_string(),
        message: message.to_string(),
    }
}

#[test]
fn document_shape_is_pinned() {
    let diags = vec![
        diag("crates/core/src/join.rs", 7, "no-unwrap", "`.expect(` in hot-path module"),
        diag("tidy.allow", 2, "unused-allow", "entry matches \"nothing\""),
    ];
    assert_eq!(
        emit::to_json(&diags),
        concat!(
            "{\"schema\":\"usj-tidy-diagnostics/v1\",",
            "\"lints\":[\"no-unwrap\",\"ordering-comment\",\"unsafe-safety\",",
            "\"metrics-registered\",\"dep-allowlist\",\"doc-drift\",",
            "\"socket-timeout\",\"durable-write\",\"span-paired\",\"budget-loop\",",
            "\"failpoint-coverage\",\"lock-discipline\"],",
            "\"count\":2,\"diagnostics\":[",
            "{\"file\":\"crates/core/src/join.rs\",\"line\":7,",
            "\"lint\":\"no-unwrap\",\"message\":\"`.expect(` in hot-path module\"},",
            "{\"file\":\"tidy.allow\",\"line\":2,\"lint\":\"unused-allow\",",
            "\"message\":\"entry matches \\\"nothing\\\"\"}",
            "]}"
        )
    );
}

#[test]
fn empty_document_is_pinned() {
    let json = emit::to_json(&[]);
    assert!(json.starts_with("{\"schema\":\"usj-tidy-diagnostics/v1\","));
    assert!(json.ends_with("\"count\":0,\"diagnostics\":[]}"));
}

#[test]
fn schema_tag_matches_constant() {
    assert_eq!(emit::SCHEMA, "usj-tidy-diagnostics/v1");
}
