//! Tokenizer property tests: over a seeded fragment corpus and every
//! `.rs` file of the real workspace, token spans must tile the source
//! byte-exactly, and string/char/comment contents must never leak into
//! the masked code view the lints pattern-match on.

use std::path::PathBuf;

use usj_tidy::tokenizer::{code_mask, code_mask_keep_strings, tokenize, Kind, Token};

/// Sentinel embedded only inside literal/comment fragments: if it ever
/// survives in `code_mask`, a literal leaked into code text.
const LEAK: &str = "LEAKZZ";

/// Fragments whose contents must vanish from the code view.
const OPAQUE: &[&str] = &[
    "\"LEAKZZ\"",
    "\"esc \\\" LEAKZZ \\\\\"",
    "\"// LEAKZZ not a comment\"",
    "\"/* LEAKZZ */\"",
    "r\"LEAKZZ raw\"",
    "r#\"LEAKZZ \" inside\"#",
    "r##\"LEAKZZ \"# still inside\"##",
    "b\"LEAKZZ bytes\"",
    "br#\"LEAKZZ raw bytes\"#",
    "c\"LEAKZZ c string\"",
    "'\\''",
    "'\\\\'",
    "'\"'",
    "// LEAKZZ line comment\n",
    "// LEAKZZ with \" quote\n",
    "/* LEAKZZ block */",
    "/* LEAKZZ /* nested LEAKZZ */ tail LEAKZZ */",
    "/** LEAKZZ doc \"quoted\" */",
    "\"multi\nline LEAKZZ\nstring\"",
];

/// Fragments that stay visible code (none may contain the sentinel).
const CODE: &[&str] = &[
    "fn f() { g(); }\n",
    "let x: Vec<u8> = vec![1, 2];\n",
    "impl<'a> T<'a> for U { }\n",
    "let _l: &'static str = s;\n",
    "match c { 'x' => 1, _ => 0 };\n",
    "x.unwrap();\n",
    "let r#type = 1;\n",
    "a #! b [attr]\n",
    "println!(\"{}\", 0x2F);\n",
    "while i < 10 { i += 1; }\n",
];

/// xorshift64* — deterministic corpus, no external PRNG dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick<'a>(&mut self, items: &[&'a str]) -> &'a str {
        items[(self.next() % items.len() as u64) as usize]
    }
}

fn assert_tiles(src: &str, toks: &[Token], what: &str) {
    if src.is_empty() {
        assert!(toks.is_empty(), "{what}: tokens for empty source");
        return;
    }
    assert_eq!(toks[0].start, 0, "{what}: first token must start at 0");
    for w in toks.windows(2) {
        assert_eq!(
            w[0].end, w[1].start,
            "{what}: gap/overlap between tokens at byte {}",
            w[0].end
        );
    }
    assert_eq!(
        toks.last().unwrap().end,
        src.len(),
        "{what}: last token must end at the file's last byte"
    );
    let mut line = 1;
    for t in toks {
        assert!(t.line >= line, "{what}: token line numbers must not regress");
        line = t.line;
    }
}

fn assert_no_leak(src: &str, toks: &[Token], what: &str) {
    let mask = code_mask(src, toks);
    assert_eq!(mask.len(), src.len(), "{what}: mask must keep byte length");
    assert!(
        !mask.contains(LEAK),
        "{what}: literal/comment contents leaked into the code view:\n\
         --- source ---\n{src}\n--- mask ---\n{mask}"
    );
    // Comments stay masked even in the strings-kept view.
    let keep = code_mask_keep_strings(src, toks);
    assert_eq!(keep.len(), src.len(), "{what}: keep-strings mask length");
    for t in toks {
        if matches!(t.kind, Kind::LineComment | Kind::BlockComment) {
            assert!(
                !keep[t.start..t.end].contains(LEAK),
                "{what}: comment text survived the keep-strings view"
            );
        }
    }
}

#[test]
fn seeded_corpus_tiles_and_never_leaks() {
    let mut rng = Rng(0x5EED_CAFE_F00D_0001);
    for round in 0..500 {
        let mut src = String::new();
        let pieces = 1 + (rng.next() % 12) as usize;
        for _ in 0..pieces {
            if rng.next() % 3 == 0 {
                src.push_str(rng.pick(OPAQUE));
                // A literal fragment must not glue onto the next one
                // (`"a""b"` is fine, `r#"…"#"x"` too, but keep it simple).
                src.push_str(" ;\n");
            } else {
                src.push_str(rng.pick(CODE));
            }
        }
        let toks = tokenize(&src);
        let what = format!("round {round}");
        assert_tiles(&src, &toks, &what);
        assert_no_leak(&src, &toks, &what);
    }
}

#[test]
fn unterminated_literals_still_tile() {
    // Broken source must never panic or lose bytes — tidy runs on
    // work-in-progress trees.
    for src in [
        "let s = \"never closed",
        "let r = r#\"never closed",
        "let c = '",
        "/* never closed",
        "fn f() { /* /* deep */ still open",
        "\"\\",
    ] {
        let toks = tokenize(src);
        assert_tiles(src, &toks, src);
    }
}

#[test]
fn real_workspace_files_tile_and_mask_cleanly() {
    let root = match std::env::var_os("USJ_TIDY_ROOT") {
        Some(root) => PathBuf::from(root),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("crates/tidy has a workspace root two levels up"),
    };
    let mut stack = vec![root.clone()];
    let mut seen = 0usize;
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !matches!(&*name, "target" | ".git" | ".buildcheck" | "results")
                    && !name.starts_with('.')
                {
                    stack.push(path);
                }
                continue;
            }
            if !name.ends_with(".rs") {
                continue;
            }
            let Ok(src) = std::fs::read_to_string(&path) else {
                continue;
            };
            let toks = tokenize(&src);
            let what = path.display().to_string();
            assert_tiles(&src, &toks, &what);
            let mask = code_mask(&src, &toks);
            assert_eq!(mask.len(), src.len(), "{what}: mask length");
            seen += 1;
        }
    }
    assert!(seen > 20, "walked only {seen} .rs files — wrong root?");
}
