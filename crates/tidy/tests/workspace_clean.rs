//! The real workspace must pass its own tidy — this is the acceptance
//! gate: `cargo test -p usj-tidy` fails if anyone introduces a hot-path
//! unwrap, an unjustified atomic ordering, an unregistered metric, an
//! unvetted dependency, or lets the docs drift.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // Allow an explicit override (used when the crate is tested from a
    // staging copy, e.g. scripts/offline-check.sh); default to two levels
    // above this crate (crates/tidy -> repo root).
    match std::env::var_os("USJ_TIDY_ROOT") {
        Some(root) => PathBuf::from(root),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("crates/tidy has a workspace root two levels up"),
    }
}

#[test]
fn real_workspace_is_tidy() {
    let root = workspace_root();
    assert!(
        root.join("crates").is_dir(),
        "workspace root {root:?} has no crates/ directory"
    );
    let diags = usj_tidy::run_tidy(&root);
    assert!(
        diags.is_empty(),
        "tidy violations in the real workspace:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
