//! Fixture-tree tests: each tree under `tests/fixtures/` seeds known
//! violations; we assert the exact `(file, line, lint)` diagnostics so a
//! lint that drifts (wrong line, wrong file, extra noise) fails loudly.

use std::path::PathBuf;

use usj_tidy::run_tidy;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Runs tidy on a fixture tree and returns `(file, line, lint)` triples.
fn triples(name: &str) -> Vec<(String, usize, String)> {
    run_tidy(&fixture(name))
        .into_iter()
        .map(|d| (d.file, d.line, d.lint))
        .collect()
}

fn t(file: &str, line: usize, lint: &str) -> (String, usize, String) {
    (file.to_string(), line, lint.to_string())
}

#[test]
fn unwrap_fixture_flags_hot_path_panics_only() {
    assert_eq!(
        triples("unwrap"),
        vec![
            // Doc-comment unwrap (line 2) and #[cfg(test)] unwrap (line 11)
            // must NOT appear; crates/verify is not hot-path.
            t("crates/core/src/parallel.rs", 4, "no-unwrap"),
            t("crates/core/src/parallel.rs", 5, "no-unwrap"),
            t("crates/qgram/src/alpha.rs", 3, "no-unwrap"),
        ]
    );
}

#[test]
fn ordering_fixture_flags_unjustified_atomics_only() {
    assert_eq!(
        triples("ordering"),
        // The Relaxed load is justified by a comment within reach; the
        // std::cmp::Ordering match is exempt; only the Acquire load fires.
        vec![t("crates/core/src/parallel.rs", 10, "ordering-comment")]
    );
}

#[test]
fn unsafesafety_fixture_flags_unjustified_blocks_only() {
    assert_eq!(
        triples("unsafesafety"),
        vec![
            // The justified block, the `unsafe fn` declaration, the prose
            // mention, and the #[cfg(test)] block all stay silent; the
            // bare block and the out-of-reach comment fire.
            t("crates/simd/src/kernels.rs", 8, "unsafe-safety"),
            t("crates/simd/src/kernels.rs", 21, "unsafe-safety"),
        ]
    );
}

#[test]
fn metrics_fixture_flags_each_registration_gap() {
    assert_eq!(
        triples("metrics"),
        vec![
            // Counter::Gamma recorded but never declared. ServeShed is
            // fully registered (declared, in ALL, named, pinned by the
            // golden fixture) and must stay silent.
            t("crates/core/src/join.rs", 3, "metrics-registered"),
            // Counter::Beta declared (line 3) but missing from ALL.
            t("crates/obs/src/lib.rs", 3, "metrics-registered"),
            // Beta's name arm (line 20) not pinned by the golden test.
            t("crates/obs/src/lib.rs", 20, "metrics-registered"),
            // Delta is declared, in ALL, and named — but "delta_total"
            // never made it into the golden schema. This is the gap the
            // fault-tolerance counters (faults_injected, waves_resumed,
            // pinned in the golden fixture) must not fall into.
            t("crates/obs/src/lib.rs", 21, "metrics-registered"),
        ]
    );
}

#[test]
fn socket_fixture_flags_reads_before_the_timeout_only() {
    assert_eq!(
        triples("socket"),
        // server.rs: the argless RwLock `.read()` (line 4) is not
        // socket IO; the line-9 read precedes set_read_timeout (line
        // 10) and fires; the line-11 read is bounded. client.rs
        // installs the timeout first (its comment mention and
        // #[cfg(test)] read are exempt), and crates/core is out of the
        // lint's scope entirely.
        vec![t("crates/serve/src/server.rs", 9, "socket-timeout")]
    );
}

#[test]
fn durable_fixture_flags_raw_writes_outside_the_helper() {
    assert_eq!(
        triples("durable"),
        vec![
            // The helper's own File::create/fs::write, the comment
            // mention, the #[cfg(test)] writes, and crates/verify (out
            // of scope) all stay silent; the three raw call sites fire.
            t("crates/core/src/persist.rs", 5, "durable-write"),
            t("crates/core/src/persist.rs", 9, "durable-write"),
            t("crates/core/src/persist.rs", 13, "durable-write"),
        ]
    );
}

#[test]
fn durable_clean_fixture_produces_no_diagnostics() {
    let diags = run_tidy(&fixture("durable_clean"));
    assert!(diags.is_empty(), "expected clean, got: {diags:?}");
}

#[test]
fn durable_allow_fixture_suppresses_only_the_reasoned_entry() {
    assert_eq!(
        // The tidy.allow entry excuses the scratch spill (and is
        // therefore not unused); the second raw write still fires.
        triples("durable_allow"),
        vec![t("crates/cli/src/report.rs", 7, "durable-write")]
    );
}

#[test]
fn span_fixture_flags_early_exits_leaks_and_stray_exits() {
    assert_eq!(
        triples("span"),
        vec![
            // The `?` (line 6) and `return` (line 8) fire while the
            // line-5 span is open; the balanced pair, the comment
            // mention, the PhaseGuard fn (its `?` runs under RAII), and
            // the #[cfg(test)] span stay silent.
            t("crates/core/src/driver.rs", 6, "span-paired"),
            t("crates/core/src/driver.rs", 8, "span-paired"),
            // enter_phase never exited before EOF.
            t("crates/core/src/driver.rs", 27, "span-paired"),
            // exit_phase with no open span; crates/verify is out of scope.
            t("crates/serve/src/worker.rs", 4, "span-paired"),
        ]
    );
}

#[test]
fn deps_fixture_flags_unvetted_external_deps() {
    assert_eq!(
        triples("deps"),
        vec![
            // rand / serde are allowed; path deps are internal.
            t("Cargo.toml", 6, "dep-allowlist"),
            t("crates/extra/Cargo.toml", 9, "dep-allowlist"),
        ]
    );
}

#[test]
fn docdrift_fixture_flags_inventory_and_changelog() {
    assert_eq!(
        triples("docdrift"),
        vec![
            // `- PR 3:` after `- PR 1:` breaks consecutive numbering, and
            // `- PR four:` does not parse at all.
            t("CHANGES.md", 3, "doc-drift"),
            t("CHANGES.md", 4, "doc-drift"),
            // crates/ghost exists on disk but not in DESIGN.md.
            t("DESIGN.md", 1, "doc-drift"),
        ]
    );
}

#[test]
fn allowlist_fixture_suppresses_matches_and_reports_stale_entries() {
    assert_eq!(
        triples("allowlist"),
        vec![
            // The cdf expect is suppressed by entry 2; entry 3 matches
            // nothing and entry 4 is malformed.
            t("tidy.allow", 3, "unused-allow"),
            t("tidy.allow", 4, "allow-syntax"),
        ]
    );
}

#[test]
fn unwrap_multiline_fixture_catches_split_chains_and_dedups() {
    assert_eq!(
        triples("unwrap_multiline"),
        vec![
            // The chain split across lines fires at the `.unwrap()` line;
            // `.unwrap_unchecked(` counts; the two unwraps sharing line 14
            // collapse to one diagnostic; the multi-line `.expect(` fires
            // at the `expect` token's line.
            t("crates/core/src/parallel.rs", 5, "no-unwrap"),
            t("crates/core/src/parallel.rs", 10, "no-unwrap"),
            t("crates/core/src/parallel.rs", 14, "no-unwrap"),
            t("crates/core/src/parallel.rs", 19, "no-unwrap"),
        ]
    );
}

#[test]
fn ordering_reach_fixture_counts_code_lines_only() {
    assert_eq!(
        triples("ordering_reach"),
        vec![
            // stamp(): blank/comment lines between the justification and
            // its sites are free — the old line-counted window flagged
            // line 9 falsely. stale(): four code lines exhaust the reach.
            // leaky(): the previous fn's comment cannot leak across the
            // extent boundary.
            t("crates/obs/src/cells.rs", 20, "ordering-comment"),
            t("crates/obs/src/cells.rs", 29, "ordering-comment"),
        ]
    );
}

#[test]
fn budget_fixture_flags_unconsulting_probe_loops_only() {
    assert_eq!(
        triples("budget"),
        vec![
            // The `for` consulting in-body and the `loop` consulting a
            // deadline variable stay silent; `for<'a>` is not a loop;
            // build fns and #[cfg(test)] loops are out of scope.
            t("crates/core/src/index.rs", 10, "budget-loop"),
            t("crates/serve/src/worker.rs", 4, "budget-loop"),
        ]
    );
}

#[test]
fn budget_clean_fixture_accepts_condition_consults() {
    let diags = run_tidy(&fixture("budget_clean"));
    assert!(diags.is_empty(), "expected clean, got: {diags:?}");
}

#[test]
fn failpoint_fixture_balances_the_economy_both_ways() {
    assert_eq!(
        triples("failpoint"),
        vec![
            // covered_step carries its own failpoint and wrapped_step is
            // one call from a firing helper: both silent. bare_shield has
            // no coverage; core.orphan is never test-referenced; the plan
            // spec names ghost.point, which nothing defines.
            t("crates/core/src/recover.rs", 16, "failpoint-coverage"),
            t("crates/core/src/recover.rs", 20, "failpoint-coverage"),
            t("crates/core/tests/ft.rs", 5, "failpoint-coverage"),
        ]
    );
}

#[test]
fn failpoint_clean_fixture_produces_no_diagnostics() {
    let diags = run_tidy(&fixture("failpoint_clean"));
    assert!(diags.is_empty(), "expected clean, got: {diags:?}");
}

#[test]
fn lockguard_fixture_flags_guards_live_across_hazards() {
    assert_eq!(
        triples("lockguard"),
        vec![
            // flush_held sleeps while the mutex guard is live; reader_held
            // blocks on read_line while the RwLock read guard is live. The
            // re-scoped and drop()-ed guards stay silent.
            t("crates/core/src/state.rs", 4, "lock-discipline"),
            t("crates/core/src/state.rs", 25, "lock-discipline"),
        ]
    );
}

#[test]
fn lockguard_clean_fixture_produces_no_diagnostics() {
    let diags = run_tidy(&fixture("lockguard_clean"));
    assert!(diags.is_empty(), "expected clean, got: {diags:?}");
}

#[test]
fn clean_fixture_produces_no_diagnostics() {
    let diags = run_tidy(&fixture("clean"));
    assert!(diags.is_empty(), "expected clean, got: {diags:?}");
}

#[test]
fn diagnostics_render_as_file_line_lint_message() {
    let diags = run_tidy(&fixture("unwrap"));
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("crates/core/src/parallel.rs:4: no-unwrap: "),
        "unexpected rendering: {rendered}"
    );
}
