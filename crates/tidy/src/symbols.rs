//! Workspace-level symbol table for the cross-file contract lints.
//!
//! The failpoint economy spans crates: `usj-fault` defines the carriers
//! (`fail_point!`, `fire`, `fire_err`), `usj-core`/`usj-serve`/`usj-cli`
//! name the injection points, and the fault suites reference those names
//! through `USJ_FAULT_PLAN` plan specs (`point#nth=action;…`). No single
//! file knows whether the economy balances — this table does: it collects
//! every **defined** failpoint name (a dotted-lowercase string literal
//! passed to a carrier), every **strict reference** (a name inside a
//! plan spec or armed via `fail_at`/`one_shot_panic` in test code), every
//! test-code string literal (for coverage checks), and the set of
//! function names whose bodies directly fire a failpoint (so a
//! `catch_unwind` wrapper that delegates to a firing helper one call away
//! still counts as covered).

use std::collections::{BTreeMap, BTreeSet};

use crate::source::SourceFile;
use crate::tokenizer::Kind;

/// Where a failpoint name is defined.
#[derive(Debug, Clone)]
pub struct FailpointDef {
    /// Workspace-relative file of the first definition.
    pub file: String,
    /// 1-based line of the defining string literal.
    pub line: usize,
}

/// The failpoint symbol table for one workspace.
#[derive(Debug, Default)]
pub struct FailpointTable {
    /// Names defined in **non-test** code (first definition wins).
    pub defined: BTreeMap<String, FailpointDef>,
    /// Names defined only in test code (fault-lib unit fixtures).
    pub defined_test: BTreeSet<String>,
    /// `(name, file, line)` strict references: plan-spec clauses and
    /// `fail_at`/`one_shot_panic` arguments in test code. Each must
    /// resolve to a defined name.
    pub strict_refs: Vec<(String, String, usize)>,
    /// Every string literal appearing in test code (coverage witness
    /// pool: a defined name must show up in at least one).
    pub test_literals: Vec<String>,
    /// Names of functions whose bodies directly fire a failpoint in
    /// non-test code — one level of call indirection for coverage.
    pub fn_fires: BTreeSet<String>,
}

/// The calls whose dotted-string arguments *define* a failpoint name.
const CARRIERS: [&str; 5] = [
    "fail_point",
    "fire",
    "fire_err",
    "durable_atomic_write",
    "durable_atomic_write_full",
];

/// Test-side arming calls whose first string argument is a strict
/// reference to an existing failpoint.
const ARMING_CALLS: [&str; 2] = ["fail_at", "one_shot_panic"];

/// Is `s` shaped like a failpoint name? Two or more dot-separated
/// lowercase/underscore segments (`parallel.batch`, `cli.write`).
pub fn is_failpoint_name(s: &str) -> bool {
    let parts: Vec<&str> = s.split('.').collect();
    parts.len() >= 2
        && parts.iter().all(|p| {
            let b = p.as_bytes();
            !b.is_empty()
                && (b[0].is_ascii_lowercase() || b[0] == b'_')
                && b.iter().all(|&c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == b'_')
        })
}

/// The contents of a string-literal token (prefix, hashes, and quotes
/// stripped; empty when the token has no quoted body).
pub fn str_content(tok_text: &str) -> &str {
    let Some(first) = tok_text.find('"') else {
        return "";
    };
    let Some(last) = tok_text.rfind('"') else {
        return "";
    };
    if last > first {
        &tok_text[first + 1..last]
    } else {
        ""
    }
}

/// Parses plan-spec clauses out of a string: `name#nth=action` separated
/// by `;`. Returns the failpoint names referenced.
fn plan_spec_names(s: &str) -> Vec<String> {
    if !s.contains('#') || !s.contains('=') {
        return Vec::new();
    }
    let mut names = Vec::new();
    for clause in s.split(';') {
        let clause = clause.trim();
        let Some(hash) = clause.find('#') else { continue };
        let name = clause[..hash].trim();
        let tail = &clause[hash + 1..];
        if is_failpoint_name(name)
            && tail.starts_with(|c: char| c.is_ascii_digit())
            && tail.contains('=')
        {
            names.push(name.to_string());
        }
    }
    names
}

/// Builds the failpoint table from every Rust file in the workspace.
pub fn failpoints(files: &[SourceFile]) -> FailpointTable {
    let mut table = FailpointTable::default();
    for file in files {
        scan_file(file, &mut table);
    }
    table
}

fn scan_file(file: &SourceFile, table: &mut FailpointTable) {
    let m = file.meaningful();
    for (mi, &ti) in m.iter().enumerate() {
        let tok = &file.toks[ti];
        match tok.kind {
            Kind::Word => {
                let word = file.tok_text(ti);
                if CARRIERS.contains(&word) {
                    scan_carrier(file, &m, mi, table);
                }
            }
            Kind::Str => {
                if !file.tok_in_test(ti) {
                    continue;
                }
                let content = str_content(file.tok_text(ti));
                if content.is_empty() {
                    continue;
                }
                table.test_literals.push(content.to_string());
                // Plan-spec names are strict references — except when the
                // literal feeds `FaultPlan::parse(` directly: the parser's
                // own grammar tests use placeholder names on purpose.
                if !call_context_is(file, &m, mi, "parse") {
                    for name in plan_spec_names(content) {
                        table
                            .strict_refs
                            .push((name, file.rel_path.clone(), tok.line));
                    }
                }
                // `plan.fail_at("name", …)` / `FaultPlan::one_shot_panic("name")`
                // arm a point by name: strict reference. Exempt inside
                // `crates/fault/src/` — the mechanism's own unit tests arm
                // placeholder names (`a.b`) to exercise the machinery, not
                // to reach a real injection point.
                if !file.rel_path.starts_with("crates/fault/src/")
                    && ARMING_CALLS
                        .iter()
                        .any(|c| call_context_is(file, &m, mi, c))
                    && is_failpoint_name(content)
                {
                    table
                        .strict_refs
                        .push((content.to_string(), file.rel_path.clone(), tok.line));
                }
            }
            _ => {}
        }
    }
}

/// Is the string at meaningful-index `mi` the **first** argument of a
/// call to `callee` — i.e. do the two preceding meaningful tokens read
/// `callee (`?
fn call_context_is(file: &SourceFile, m: &[usize], mi: usize, callee: &str) -> bool {
    if mi < 2 {
        return false;
    }
    file.tok_text(m[mi - 1]) == "(" && file.tok_text(m[mi - 2]) == callee
}

/// Scans one carrier call at meaningful-index `mi`: collects the dotted
/// string names in its argument list as definitions.
fn scan_carrier(file: &SourceFile, m: &[usize], mi: usize, table: &mut FailpointTable) {
    let carrier_ti = m[mi];
    let word = file.tok_text(carrier_ti);
    // `fail_point` is a macro: expect `!` then `(`; the functions take
    // `(` directly. Anything else (the carrier's own definition site,
    // a mention in a path) is not a call.
    let mut j = mi + 1;
    if word == "fail_point" {
        if j >= m.len() || file.tok_text(m[j]) != "!" {
            return;
        }
        j += 1;
    }
    if j >= m.len() || file.tok_text(m[j]) != "(" {
        return;
    }
    let mut depth = 0i64;
    let mut names: Vec<(String, usize)> = Vec::new();
    while j < m.len() {
        let ti = m[j];
        match file.tok_text(ti) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {
                if file.toks[ti].kind == Kind::Str {
                    let content = str_content(file.tok_text(ti));
                    if is_failpoint_name(content) {
                        names.push((content.to_string(), file.toks[ti].line));
                    }
                }
            }
        }
        j += 1;
    }
    let in_test = file.tok_in_test(carrier_ti);
    for (name, line) in names {
        if in_test {
            table.defined_test.insert(name);
        } else {
            table.defined.entry(name).or_insert_with(|| FailpointDef {
                file: file.rel_path.clone(),
                line,
            });
            if let Some(e) = file.extents.enclosing_fn(carrier_ti) {
                table.fn_fires.insert(file.extents.extents[e].name.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_of(files: &[(&str, &str)]) -> FailpointTable {
        let parsed: Vec<SourceFile> = files
            .iter()
            .map(|(p, t)| SourceFile::parse(p, t))
            .collect();
        failpoints(&parsed)
    }

    #[test]
    fn carriers_define_dotted_names() {
        let t = table_of(&[(
            "crates/core/src/parallel.rs",
            "fn run() { fail_point!(\"parallel.batch\"); }\n\
             fn evict() { if fire(\"parallel.evict\") { return; } }\n",
        )]);
        assert!(t.defined.contains_key("parallel.batch"));
        assert_eq!(t.defined["parallel.evict"].line, 2);
        assert!(t.fn_fires.contains("run"));
        assert!(t.fn_fires.contains("evict"));
    }

    #[test]
    fn test_code_defines_separately_and_literals_are_collected() {
        let t = table_of(&[(
            "crates/fault/src/lib.rs",
            "#[cfg(test)]\nmod tests {\n    fn f() { fire(\"t.panic\"); let s = \"free text\"; }\n}\n",
        )]);
        assert!(t.defined.is_empty());
        assert!(t.defined_test.contains("t.panic"));
        assert!(t.test_literals.iter().any(|l| l == "free text"));
    }

    // `\u{23}` is `#`: written escaped so tidy's own scan of this file's
    // raw text never reads the fixtures as live plan specs.
    #[test]
    fn plan_specs_are_strict_refs_except_parser_grammar_tests() {
        let t = table_of(&[(
            "crates/cli/tests/ft.rs",
            "fn a() { run(Some(\"parallel.evict\u{23}1=panic\")); }\n\
             fn b() { FaultPlan::parse(\"a.b\u{23}2=panic; c.d\u{23}0=delay:25\").unwrap(); }\n",
        )]);
        let names: Vec<&str> = t.strict_refs.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, vec!["parallel.evict"], "parse() args are exempt");
    }

    #[test]
    fn fault_crate_grammar_tests_arm_placeholders_freely() {
        let t = table_of(&[(
            "crates/fault/src/lib.rs",
            "#[cfg(test)]\nmod tests {\n    fn f() { plan.fail_at(\"a.b\", 2, act); }\n}\n",
        )]);
        assert!(t.strict_refs.is_empty(), "{:?}", t.strict_refs);
    }

    #[test]
    fn arming_calls_are_strict_refs() {
        let t = table_of(&[(
            "crates/core/tests/ft.rs",
            "fn a() { plan.fail_at(\"index.build\", act); FaultPlan::one_shot_panic(\"parallel.verify\"); }\n",
        )]);
        let names: Vec<&str> = t.strict_refs.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, vec!["index.build", "parallel.verify"]);
    }

    #[test]
    fn name_shape_is_enforced() {
        assert!(is_failpoint_name("parallel.batch"));
        assert!(is_failpoint_name("a.b.c_2"));
        assert!(!is_failpoint_name("single"));
        assert!(!is_failpoint_name("Upper.case"));
        assert!(!is_failpoint_name("a..b"));
        assert!(!is_failpoint_name("has space.x"));
    }
}
