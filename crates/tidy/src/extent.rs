//! The brace tree: every token assigned to a function / impl / mod /
//! trait extent.
//!
//! Built in one pass over the token stream from [`crate::tokenizer`]:
//! item keywords (`fn`, `mod`, `impl`, `trait`) open an extent at the `{`
//! that follows their header, the matching `}` closes it, and every token
//! in between records the innermost open extent. Closures and expression
//! braces change depth but never open extents, so tokens inside a closure
//! belong to the enclosing function — which is exactly the granularity
//! the contract lints reason at ("in the same extent as…").
//!
//! `#[cfg(test)]` / `#[test]` attributes mark an extent (and everything
//! nested in it) as test code; the lints that exempt tests key off that.

use crate::tokenizer::{Kind, Token};

/// What kind of item an extent is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtentKind {
    /// A `fn` body.
    Fn,
    /// An `impl` block.
    Impl,
    /// A `mod` body.
    Mod,
    /// A `trait` body.
    Trait,
}

/// One extent: an item and its brace-delimited body.
#[derive(Debug, Clone)]
pub struct Extent {
    /// Item kind.
    pub kind: ExtentKind,
    /// Item name (for `impl`, the implemented-for type's last path word).
    pub name: String,
    /// 1-based line of the item keyword.
    pub header_line: usize,
    /// Token-index range of the body, **inclusive** of both braces.
    pub body: (usize, usize),
    /// Enclosing extent, if any.
    pub parent: Option<usize>,
    /// `true` when this extent (or an ancestor) is gated by
    /// `#[cfg(test)]` or marked `#[test]`.
    pub is_test: bool,
}

/// All extents of one file plus the token → innermost-extent map.
#[derive(Debug, Default)]
pub struct Extents {
    /// Extents in opening order.
    pub extents: Vec<Extent>,
    /// For each token index, the innermost extent containing it (the
    /// body braces belong to the extent they delimit).
    pub token_extent: Vec<Option<usize>>,
}

impl Extents {
    /// The innermost **function** extent containing token `ti` (walking
    /// out through impl/mod extents).
    pub fn enclosing_fn(&self, ti: usize) -> Option<usize> {
        let mut cur = *self.token_extent.get(ti)?;
        while let Some(e) = cur {
            if self.extents[e].kind == ExtentKind::Fn {
                return Some(e);
            }
            cur = self.extents[e].parent;
        }
        None
    }

    /// `true` when token `ti` sits inside test code.
    pub fn in_test(&self, ti: usize) -> bool {
        self.token_extent
            .get(ti)
            .copied()
            .flatten()
            .is_some_and(|e| self.extents[e].is_test)
    }
}

/// Does an attribute's text gate test code? Covers `#[test]`,
/// `#[cfg(test)]` (with any extra cfg predicates), and harness variants
/// like `#[tokio::test]`.
fn attr_is_test(attr: &str) -> bool {
    let a = attr.trim();
    a == "test" || a.contains("cfg(test") || a.ends_with("::test")
}

/// Item keywords that clear pending attributes without opening a tracked
/// extent (their attributes must not leak onto the next tracked item).
const ATTR_SINKS: [&str; 9] = [
    "struct",
    "enum",
    "union",
    "static",
    "const",
    "use",
    "type",
    "macro_rules",
    "extern",
];

/// Builds the extent tree for one tokenized file.
pub fn build(src: &str, toks: &[Token]) -> Extents {
    let mut out = Extents {
        extents: Vec::new(),
        token_extent: vec![None; toks.len()],
    };
    // (extent index, depth at which its body `{` was consumed)
    let mut stack: Vec<(usize, i64)> = Vec::new();
    let mut depth: i64 = 0;
    let mut pending_attrs: Vec<String> = Vec::new();
    let mut pending_test = false;

    let mut i = 0usize;
    while i < toks.len() {
        // Record the innermost open extent for this token before any
        // push/pop triggered by it (so a closing `}` still belongs to the
        // extent it closes, and a header's tokens belong to the parent).
        out.token_extent[i] = stack.last().map(|&(e, _)| e);

        let t = &toks[i];
        if t.is_trivia() {
            i += 1;
            continue;
        }
        let text = t.text(src);
        match t.kind {
            Kind::Punct if text == "#" => {
                // `#[attr]` (outer) — collect its text; `#![attr]` (inner)
                // applies to the enclosing item, not the next one: skip.
                let (attr, next, inner) = scan_attribute(src, toks, i);
                if let Some(attr) = attr {
                    for j in i..next {
                        out.token_extent[j] = stack.last().map(|&(e, _)| e);
                    }
                    if !inner {
                        pending_test = pending_test || attr_is_test(&attr);
                        pending_attrs.push(attr);
                    }
                    i = next;
                    continue;
                }
                i += 1;
            }
            Kind::Punct if text == "{" => {
                depth += 1;
                pending_attrs.clear();
                pending_test = false;
                i += 1;
            }
            Kind::Punct if text == "}" => {
                depth -= 1;
                while let Some(&(e, open_depth)) = stack.last() {
                    if depth < open_depth {
                        out.extents[e].body.1 = i;
                        stack.pop();
                    } else {
                        break;
                    }
                }
                pending_attrs.clear();
                pending_test = false;
                i += 1;
            }
            Kind::Punct if text == ";" => {
                pending_attrs.clear();
                pending_test = false;
                i += 1;
            }
            Kind::Word => {
                let kind = match text {
                    "fn" => Some(ExtentKind::Fn),
                    "mod" => Some(ExtentKind::Mod),
                    "impl" => Some(ExtentKind::Impl),
                    "trait" => Some(ExtentKind::Trait),
                    _ => None,
                };
                if let Some(kind) = kind {
                    let header_line = t.line;
                    let is_test_here = pending_test;
                    pending_attrs.clear();
                    pending_test = false;
                    // Find the body `{` (or `;` for a bodyless
                    // declaration) at bracket depth 0 relative to here,
                    // collecting the last word seen for the name.
                    let mut name = String::new();
                    let mut j = i + 1;
                    let mut bracket = 0i64;
                    let mut body_open: Option<usize> = None;
                    while j < toks.len() {
                        let u = &toks[j];
                        if u.is_trivia() {
                            j += 1;
                            continue;
                        }
                        let ut = u.text(src);
                        match ut {
                            "(" | "[" => bracket += 1,
                            ")" | "]" => bracket -= 1,
                            "{" if bracket == 0 => {
                                body_open = Some(j);
                                break;
                            }
                            ";" if bracket == 0 => break,
                            _ => {
                                if u.kind == Kind::Word && bracket == 0 {
                                    match kind {
                                        // `impl Display for X {` → X: the
                                        // last word before the brace wins.
                                        ExtentKind::Impl => name = ut.to_string(),
                                        // `fn name<T>(…) -> Ret {` → the
                                        // first word, before generics and
                                        // return-type words can overwrite.
                                        _ if name.is_empty() => name = ut.to_string(),
                                        _ => {}
                                    }
                                }
                            }
                        }
                        j += 1;
                    }
                    // Header tokens (through the terminator) belong to the
                    // parent extent; a body `{` is re-assigned below.
                    let parent_now = stack.last().map(|&(e, _)| e);
                    for slot in &mut out.token_extent[i..(j + 1).min(toks.len())] {
                        *slot = parent_now;
                    }
                    if let Some(open) = body_open {
                        let parent = stack.last().map(|&(e, _)| e);
                        let is_test =
                            is_test_here || parent.is_some_and(|p| out.extents[p].is_test);
                        let e = out.extents.len();
                        out.extents.push(Extent {
                            kind,
                            name,
                            header_line,
                            body: (open, open),
                            parent,
                            is_test,
                        });
                        // The `{` itself belongs to the new extent.
                        out.token_extent[open] = Some(e);
                        depth += 1;
                        stack.push((e, depth));
                        i = open + 1;
                        continue;
                    }
                    // Declaration without a body (trait method, extern fn).
                    i = j + 1;
                    continue;
                }
                if ATTR_SINKS.contains(&text) {
                    pending_attrs.clear();
                    pending_test = false;
                }
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    out
}

/// Scans an attribute starting at the `#` token. Returns
/// `(Some(text-between-brackets), index-after-`]`, is_inner)`; `None`
/// when the `#` is not followed by `[` / `![`.
fn scan_attribute(src: &str, toks: &[Token], hash: usize) -> (Option<String>, usize, bool) {
    let mut j = hash + 1;
    while j < toks.len() && toks[j].is_trivia() {
        j += 1;
    }
    let mut inner = false;
    if j < toks.len() && toks[j].text(src) == "!" {
        inner = true;
        j += 1;
        while j < toks.len() && toks[j].is_trivia() {
            j += 1;
        }
    }
    if j >= toks.len() || toks[j].text(src) != "[" {
        return (None, hash + 1, false);
    }
    let content_start = toks[j].end;
    let mut depth = 0i64;
    while j < toks.len() {
        match toks[j].text(src) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    let text = src[content_start..toks[j].start].to_string();
                    return (Some(text), j + 1, inner);
                }
            }
            _ => {}
        }
        j += 1;
    }
    (Some(src[content_start..].to_string()), toks.len(), inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn extents_of(src: &str) -> Extents {
        build(src, &tokenize(src))
    }

    #[test]
    fn nested_items_form_a_tree() {
        let src = "\
mod outer {
    impl Foo {
        fn method(&self) { if x { y(); } }
    }
    fn free() {}
}
";
        let e = extents_of(src);
        let names: Vec<(&ExtentKind, &str, Option<usize>)> = e
            .extents
            .iter()
            .map(|x| (&x.kind, x.name.as_str(), x.parent))
            .collect();
        assert_eq!(
            names,
            vec![
                (&ExtentKind::Mod, "outer", None),
                (&ExtentKind::Impl, "Foo", Some(0)),
                (&ExtentKind::Fn, "method", Some(1)),
                (&ExtentKind::Fn, "free", Some(0)),
            ]
        );
    }

    #[test]
    fn cfg_test_gates_nested_extents() {
        let src = "\
fn hot() {}
#[cfg(test)]
mod tests {
    #[test]
    fn check() { hot(); }
}
fn after() {}
";
        let e = extents_of(src);
        assert!(!e.extents[0].is_test);
        assert!(e.extents[1].is_test, "{:?}", e.extents[1]);
        assert!(e.extents[2].is_test);
        assert!(!e.extents[3].is_test);
    }

    #[test]
    fn attributes_do_not_leak_past_untracked_items() {
        let src = "\
#[cfg(test)]
struct OnlyForTests;
fn not_a_test() {}
";
        let e = extents_of(src);
        assert_eq!(e.extents.len(), 1);
        assert!(!e.extents[0].is_test);
    }

    #[test]
    fn impl_for_names_the_type_and_closures_stay_inline() {
        let src = "\
impl std::fmt::Display for SearchAbort {
    fn fmt(&self) { items.iter().map(|x| { x + 1 }).sum() }
}
";
        let e = extents_of(src);
        assert_eq!(e.extents[0].name, "SearchAbort");
        assert_eq!(e.extents.len(), 2, "closure braces must not open extents");
    }

    #[test]
    fn trait_method_declarations_open_no_extent() {
        let src = "trait T { fn decl(&self); fn with_body(&self) {} }";
        let e = extents_of(src);
        let fns: Vec<&str> = e
            .extents
            .iter()
            .filter(|x| x.kind == ExtentKind::Fn)
            .map(|x| x.name.as_str())
            .collect();
        assert_eq!(fns, vec!["with_body"]);
    }

    #[test]
    fn tokens_map_to_innermost_extent() {
        let src = "fn a() { inner(); }\nfn b() { other(); }";
        let toks = tokenize(src);
        let e = build(src, &toks);
        let inner_ti = toks
            .iter()
            .position(|t| t.text(src) == "inner")
            .unwrap();
        let other_ti = toks
            .iter()
            .position(|t| t.text(src) == "other")
            .unwrap();
        assert_eq!(e.token_extent[inner_ti], Some(0));
        assert_eq!(e.token_extent[other_ti], Some(1));
        assert_eq!(e.enclosing_fn(other_ti), Some(1));
    }
}
