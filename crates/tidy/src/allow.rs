//! The `tidy.allow` allowlist: line-granular, reason-carrying exceptions.
//!
//! One entry per line:
//!
//! ```text
//! <lint> <path> -- <line substring> -- <reason>
//! ```
//!
//! An entry suppresses a diagnostic when all three match: the lint name,
//! the file (workspace-relative path, `/`-separated), and the *content* of
//! the offending line (substring match — content survives line-number
//! drift, unlike `file:line` pins). The reason is mandatory: an exception
//! without a recorded justification is itself a lint violation. Entries
//! that suppress nothing are reported as `unused-allow` so the file can
//! never accumulate dead exceptions.

use std::path::Path;

use crate::{Diagnostic, Workspace, LINT_NAMES};

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// 1-based line in `tidy.allow` (for unused-entry diagnostics).
    pub line: usize,
    /// Lint this entry suppresses.
    pub lint: String,
    /// Workspace-relative file the exception applies to.
    pub path: String,
    /// Substring the offending source line must contain.
    pub needle: String,
    /// Human-readable justification (mandatory).
    pub reason: String,
}

/// Parsed `tidy.allow` plus per-entry use counts.
#[derive(Debug, Default)]
pub struct AllowList {
    entries: Vec<AllowEntry>,
    used: Vec<bool>,
    /// Diagnostics produced while parsing (malformed entries).
    pub parse_diags: Vec<Diagnostic>,
}

impl AllowList {
    /// Loads `tidy.allow` from the workspace root; a missing file is an
    /// empty allowlist (a workspace with no exceptions needs no file).
    pub fn load(root: &Path) -> AllowList {
        let path = root.join("tidy.allow");
        match std::fs::read_to_string(&path) {
            Ok(text) => AllowList::parse(&text),
            Err(_) => AllowList::default(),
        }
    }

    /// Parses the allowlist text.
    pub fn parse(text: &str) -> AllowList {
        let mut list = AllowList::default();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let number = i + 1;
            let mut diag = |message: String| {
                list.parse_diags.push(Diagnostic {
                    file: "tidy.allow".to_string(),
                    line: number,
                    lint: "allow-syntax".to_string(),
                    message,
                });
            };
            let parts: Vec<&str> = line.splitn(3, " -- ").collect();
            if parts.len() != 3 {
                diag(format!(
                    "expected `<lint> <path> -- <substring> -- <reason>`, got {line:?}"
                ));
                continue;
            }
            let head: Vec<&str> = parts[0].split_whitespace().collect();
            if head.len() != 2 {
                diag(format!(
                    "expected `<lint> <path>` before the first ` -- `, got {:?}",
                    parts[0]
                ));
                continue;
            }
            let (lint, path) = (head[0], head[1]);
            if !LINT_NAMES.contains(&lint) {
                diag(format!(
                    "unknown lint {lint:?} (expected one of: {})",
                    LINT_NAMES.join(", ")
                ));
                continue;
            }
            let needle = parts[1].trim();
            let reason = parts[2].trim();
            if needle.is_empty() {
                diag("empty line-substring matcher".to_string());
                continue;
            }
            if reason.is_empty() {
                diag("every allow entry must carry a reason".to_string());
                continue;
            }
            list.entries.push(AllowEntry {
                line: number,
                lint: lint.to_string(),
                path: path.to_string(),
                needle: needle.to_string(),
                reason: reason.to_string(),
            });
            list.used.push(false);
        }
        list
    }

    /// `true` (and marks the entry used) when some entry suppresses a
    /// `lint` diagnostic for `rel_path` whose offending line text is
    /// `line_text`.
    pub fn allows(&mut self, lint: &str, rel_path: &str, line_text: &str) -> bool {
        let mut hit = false;
        for (entry, used) in self.entries.iter().zip(self.used.iter_mut()) {
            if entry.lint == lint && entry.path == rel_path && line_text.contains(&entry.needle) {
                *used = true;
                hit = true;
            }
        }
        hit
    }

    /// Diagnostics for entries that never suppressed anything. When the
    /// entry's file still exists, the message names the current line
    /// most similar to the stale needle — the usual cause is the
    /// offending line having been edited, and the nearest match is where
    /// to re-point (or confirm the violation is gone).
    pub fn unused_entries(&self, ws: &Workspace) -> Vec<Diagnostic> {
        self.entries
            .iter()
            .zip(self.used.iter())
            .filter(|(_, used)| !**used)
            .map(|(entry, _)| {
                let mut message = format!(
                    "entry for {} in {} matches nothing — delete it or fix the pattern",
                    entry.lint, entry.path
                );
                if let Some((line, text)) = nearest_line(ws, &entry.path, &entry.needle) {
                    message.push_str(&format!(" (nearest match: line {line}: `{text}`)"));
                }
                Diagnostic {
                    file: "tidy.allow".to_string(),
                    line: entry.line,
                    lint: "unused-allow".to_string(),
                    message,
                }
            })
            .collect()
    }
}

/// The line of `rel_path` most similar to `needle` (longest common
/// substring), when the similarity is meaningful — at least half the
/// needle must survive. Returns `(1-based line, trimmed text)`.
fn nearest_line(ws: &Workspace, rel_path: &str, needle: &str) -> Option<(usize, String)> {
    let lines: Vec<(usize, &str)> = if let Some(f) =
        ws.rust_files.iter().find(|f| f.rel_path == rel_path)
    {
        f.lines.iter().map(|l| (l.number, l.text.as_str())).collect()
    } else if let Some(m) = ws.manifests.iter().find(|m| m.rel_path == rel_path) {
        m.text.lines().enumerate().map(|(i, t)| (i + 1, t)).collect()
    } else {
        return None;
    };
    let (mut best, mut best_score) = (None, 0usize);
    for (number, text) in lines {
        let score = longest_common_substring(needle, text);
        if score > best_score {
            best_score = score;
            best = Some((number, text.trim().to_string()));
        }
    }
    if best_score * 2 >= needle.len() {
        best
    } else {
        None
    }
}

/// Length of the longest common substring of `a` and `b` (bytes; two
/// rolling DP rows — needles and lines are short).
fn longest_common_substring(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    let mut best = 0;
    for &ca in a {
        for (j, &cb) in b.iter().enumerate() {
            cur[j + 1] = if ca == cb { prev[j] + 1 } else { 0 };
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn ws_with(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            rust_files: files
                .iter()
                .map(|(p, t)| SourceFile::parse(p, t))
                .collect(),
            manifests: Vec::new(),
            crate_dirs: Vec::new(),
            design_md: None,
            changes_md: None,
        }
    }

    #[test]
    fn parses_and_matches_entries() {
        let text = "\
# comment
no-unwrap crates/core/src/parallel.rs -- .lock() -- worker panics propagate via scope join
";
        let mut list = AllowList::parse(text);
        assert!(list.parse_diags.is_empty(), "{:?}", list.parse_diags);
        assert!(list.allows(
            "no-unwrap",
            "crates/core/src/parallel.rs",
            "    let g = results.lock().expect(\"x\");"
        ));
        assert!(!list.allows("no-unwrap", "crates/core/src/join.rs", ".lock()"));
        assert!(!list.allows("ordering-comment", "crates/core/src/parallel.rs", ".lock()"));
        assert!(list.unused_entries(&ws_with(&[])).is_empty());
    }

    #[test]
    fn unused_and_malformed_entries_are_reported() {
        let text = "\
no-unwrap crates/a.rs -- never_matches -- some reason
bogus-lint crates/a.rs -- x -- reason
no-unwrap crates/a.rs -- missing reason separator
no-unwrap crates/a.rs -- x --
";
        let list = AllowList::parse(text);
        assert_eq!(list.parse_diags.len(), 3, "{:?}", list.parse_diags);
        assert!(list.parse_diags.iter().all(|d| d.lint == "allow-syntax"));
        let unused = list.unused_entries(&ws_with(&[]));
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].line, 1);
        assert_eq!(unused[0].lint, "unused-allow");
    }

    #[test]
    fn unused_entries_name_the_nearest_current_line() {
        let text = "no-unwrap crates/a.rs -- value.expect(\"profiles exist\") -- stale\n";
        let list = AllowList::parse(text);
        let ws = ws_with(&[(
            "crates/a.rs",
            "fn f() {}\nlet x = value.expect(\"profile exists\");\nfn g() {}\n",
        )]);
        let unused = list.unused_entries(&ws);
        assert_eq!(unused.len(), 1);
        assert!(
            unused[0].message.contains("nearest match: line 2"),
            "{}",
            unused[0].message
        );
        // A needle with no meaningful echo in the file stays bare.
        let stale = AllowList::parse("no-unwrap crates/a.rs -- zzz_qqq_www_never -- stale\n");
        let bare = stale.unused_entries(&ws);
        assert!(!bare[0].message.contains("nearest match"), "{}", bare[0].message);
    }
}
