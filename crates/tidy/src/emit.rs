//! Machine-readable diagnostic emission (`tidy --emit=json`).
//!
//! One stable, schema-versioned JSON document for CI artifacts and
//! editor tooling. Hand-rolled like `usj-obs`'s snapshot writer — this
//! crate is std-only by contract, and the schema is small enough that a
//! serializer would be the heavier dependency in every sense.
//!
//! The schema is pinned by `tests/emit_json.rs`; bump the `schema` tag
//! on any shape change.

use crate::Diagnostic;

/// The schema identifier embedded in every document.
pub const SCHEMA: &str = "usj-tidy-diagnostics/v1";

/// Renders diagnostics as a single-line JSON document:
///
/// ```json
/// {"schema":"usj-tidy-diagnostics/v1","lints":[…],"count":N,
///  "diagnostics":[{"file":"…","line":N,"lint":"…","message":"…"},…]}
/// ```
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":");
    push_json_str(&mut out, SCHEMA);
    out.push_str(",\"lints\":[");
    for (i, name) in crate::LINT_NAMES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, name);
    }
    out.push_str("],\"count\":");
    out.push_str(&diags.len().to_string());
    out.push_str(",\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"file\":");
        push_json_str(&mut out, &d.file);
        out.push_str(",\"line\":");
        out.push_str(&d.line.to_string());
        out.push_str(",\"lint\":");
        push_json_str(&mut out, &d.lint);
        out.push_str(",\"message\":");
        push_json_str(&mut out, &d.message);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Appends `s` as a JSON string literal (quotes, backslashes, and
/// control characters escaped).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_counts() {
        let diags = vec![Diagnostic {
            file: "a.rs".to_string(),
            line: 3,
            lint: "no-unwrap".to_string(),
            message: "say \"no\"\\ to\npanics".to_string(),
        }];
        let json = to_json(&diags);
        assert!(json.starts_with("{\"schema\":\"usj-tidy-diagnostics/v1\""));
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\\\"no\\\"\\\\ to\\npanics"));
        assert!(!json.contains('\n'), "document must be single-line");
    }

    #[test]
    fn empty_input_is_a_valid_empty_document() {
        let json = to_json(&[]);
        assert!(json.contains("\"count\":0,\"diagnostics\":[]"));
    }
}
