//! A string/char/raw-string/comment-aware Rust tokenizer.
//!
//! This is the foundation the token lints stand on. It is *not* a full
//! lexer — no keyword table, no number grammar, no macro awareness — but
//! it gets the four things right that a line-regex engine cannot:
//!
//! * **string literals** (plain, raw `r#"…"#`, byte, byte-raw, C) never
//!   leak their contents into code text, so `".unwrap()"` inside a
//!   message string cannot trip `no-unwrap`;
//! * **char literals vs lifetimes** are disambiguated, so `'a'` does not
//!   swallow the rest of the file and `&'a str` does not open a "char";
//! * **block comments nest**, exactly like rustc's, so `/* /* */ */`
//!   ends where the compiler says it ends;
//! * **spans tile the file byte-exactly** — every byte belongs to
//!   exactly one token, in order, which is what lets the extent builder
//!   and the per-line views stay in perfect sync with the raw text (and
//!   what the property tests pin).
//!
//! Everything downstream (extents, per-line code/comment views, the
//! token-sequence matchers) consumes this stream.

/// What a token is, at the granularity the lints care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Runs of whitespace (including newlines).
    Whitespace,
    /// `// …` to end of line (doc comments `///`/`//!` included).
    LineComment,
    /// `/* … */`, nesting tracked; unterminated runs to EOF.
    BlockComment,
    /// Any string literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
    /// `c"…"`. The span includes prefix, quotes, and hashes.
    Str,
    /// A char or byte-char literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// A lifetime or loop label: `'a`, `'static`, `'outer`.
    Lifetime,
    /// An identifier, keyword, raw identifier (`r#match`), or number.
    Word,
    /// A single punctuation character (or one non-ASCII char).
    Punct,
}

/// One token: kind plus a byte span into the source text.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Token class.
    pub kind: Kind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of the first byte.
    pub line: usize,
}

impl Token {
    /// `true` for tokens the structural scanners skip: whitespace and
    /// both comment kinds.
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            Kind::Whitespace | Kind::LineComment | Kind::BlockComment
        )
    }

    /// The token's text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenizes `text`. Total function: any byte sequence produces a stream
/// whose spans tile `text` exactly (unterminated literals/comments are
/// closed at EOF). The compiler is the authority on what is *valid*;
/// the tokenizer only has to agree with it on what is *where*.
pub fn tokenize(text: &str) -> Vec<Token> {
    let bytes = text.as_bytes();
    let mut toks: Vec<Token> = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    // Count the newlines inside [start, end) and bump the line counter.
    // Called exactly once per emitted token, with the token's span.
    let bump = |line: &mut usize, bytes: &[u8], start: usize, end: usize| {
        *line += bytes[start..end].iter().filter(|&&b| b == b'\n').count();
    };

    while i < bytes.len() {
        let start = i;
        let start_line = line;
        let b = bytes[i];
        let kind = if b.is_ascii_whitespace() {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            Kind::Whitespace
        } else if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            Kind::LineComment
        } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            i += 2;
            let mut depth = 1usize;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            Kind::BlockComment
        } else if b == b'"' {
            i = scan_plain_string(bytes, i + 1);
            Kind::Str
        } else if let Some(end) = scan_raw_or_prefixed(bytes, i) {
            i = end.0;
            end.1
        } else if b == b'\'' {
            let (end, kind) = scan_quote(bytes, i);
            i = end;
            kind
        } else if is_word_byte(b) {
            i += 1;
            while i < bytes.len() && is_word_byte(bytes[i]) {
                i += 1;
            }
            Kind::Word
        } else if b < 0x80 {
            i += 1;
            Kind::Punct
        } else {
            // One full UTF-8 character, so slicing at token boundaries
            // always lands on char boundaries.
            i += 1;
            while i < bytes.len() && (bytes[i] & 0xC0) == 0x80 {
                i += 1;
            }
            Kind::Punct
        };
        bump(&mut line, bytes, start, i);
        toks.push(Token {
            kind,
            start,
            end: i,
            line: start_line,
        });
    }
    toks
}

/// Scans a plain (escapable) string body starting *after* the opening
/// quote; returns the offset one past the closing quote (or EOF).
fn scan_plain_string(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// Raw / prefixed literal starting at `i` (`r"`, `r#"`, `br#"`, `b"`,
/// `b'`, `c"`, …). Returns `Some((end, kind))` when one starts here;
/// `None` means "treat as an ordinary word" (covers raw identifiers like
/// `r#match` and plain idents beginning with r/b/c).
fn scan_raw_or_prefixed(bytes: &[u8], i: usize) -> Option<(usize, Kind)> {
    let b = bytes[i];
    if !(b == b'r' || b == b'b' || b == b'c') {
        return None;
    }
    // Longest prefix first: br / rb-style two-letter prefixes.
    let (raw, after_prefix) = match (b, bytes.get(i + 1)) {
        (b'b', Some(&b'r')) => (true, i + 2),
        (b'r', _) => (true, i + 1),
        (b'b', _) | (b'c', _) => (false, i + 1),
        _ => return None,
    };
    if raw {
        // r / br: any number of #s then a quote opens a raw string.
        let mut j = after_prefix;
        while j < bytes.len() && bytes[j] == b'#' {
            j += 1;
        }
        if bytes.get(j) == Some(&b'"') {
            let hashes = j - after_prefix;
            let mut k = j + 1;
            while k < bytes.len() {
                if bytes[k] == b'"' && bytes[k + 1..].len() >= hashes
                    && bytes[k + 1..k + 1 + hashes].iter().all(|&h| h == b'#')
                {
                    return Some((k + 1 + hashes, Kind::Str));
                }
                k += 1;
            }
            return Some((bytes.len(), Kind::Str));
        }
        return None; // raw identifier (r#ident) or a word starting with r/b
    }
    // b / c prefix: a directly-attached quote opens a literal.
    match bytes.get(after_prefix) {
        Some(&b'"') => Some((scan_plain_string(bytes, after_prefix + 1), Kind::Str)),
        Some(&b'\'') => {
            let (end, _) = scan_quote(bytes, after_prefix);
            Some((end, Kind::Char))
        }
        _ => None,
    }
}

/// Disambiguates `'` at `i`: char literal or lifetime. Returns
/// `(end, kind)`.
fn scan_quote(bytes: &[u8], i: usize) -> (usize, Kind) {
    debug_assert_eq!(bytes[i], b'\'');
    match bytes.get(i + 1) {
        // Escape: definitely a char literal. The escaped character is
        // part of the escape (`'\''`, `'\\'`), so consume it before
        // looking for the close; longer escapes (`'\u{23}'`, `'\x41'`)
        // just extend the scan. A newline means the literal is broken —
        // stop there so a typo can't swallow the rest of the file.
        Some(&b'\\') => {
            let mut j = i + 2;
            if j < bytes.len() && bytes[j] != b'\n' {
                j += 1;
            }
            while j < bytes.len() {
                match bytes[j] {
                    b'\'' => return (j + 1, Kind::Char),
                    b'\n' => return (j, Kind::Char),
                    _ => j += 1,
                }
            }
            (bytes.len(), Kind::Char)
        }
        // Word start: 'a' is a char, 'a (no closing quote) a lifetime.
        Some(&c) if is_word_byte(c) => {
            let mut j = i + 1;
            while j < bytes.len() && is_word_byte(bytes[j]) {
                j += 1;
            }
            if bytes.get(j) == Some(&b'\'') && j == i + 2 {
                (j + 1, Kind::Char)
            } else {
                (j, Kind::Lifetime)
            }
        }
        // Any other single char (or non-ASCII) closed by a quote.
        Some(_) => {
            // Consume one UTF-8 character, then require the close.
            let mut j = i + 1 + 1;
            while j < bytes.len() && (bytes[j] & 0xC0) == 0x80 {
                j += 1;
            }
            if bytes.get(j) == Some(&b'\'') {
                (j + 1, Kind::Char)
            } else {
                // Stray quote (macro `$'`? broken source): one punct-ish
                // char token so the stream keeps tiling.
                (i + 1, Kind::Punct)
            }
        }
        None => (i + 1, Kind::Punct),
    }
}

/// The masked **code view**: same byte length as `text`, with comment
/// bytes and string/char interiors replaced by spaces (newlines kept, the
/// delimiting quotes kept). Pattern matching on this view can never hit
/// prose or literal contents.
pub fn code_mask(text: &str, toks: &[Token]) -> String {
    mask(text, toks, true)
}

/// Like [`code_mask`] but with string/char literal contents **kept** —
/// for the lints that read literals (metric names, failpoint names).
/// Comments are still masked.
pub fn code_mask_keep_strings(text: &str, toks: &[Token]) -> String {
    mask(text, toks, false)
}

fn mask(text: &str, toks: &[Token], mask_strings: bool) -> String {
    let mut out = text.as_bytes().to_vec();
    for t in toks {
        let range = match t.kind {
            Kind::LineComment | Kind::BlockComment => t.start..t.end,
            Kind::Str | Kind::Char if mask_strings => {
                // Keep the delimiters so `.expect(` / `("` shapes survive.
                (t.start + 1)..t.end.saturating_sub(1)
            }
            _ => continue,
        };
        for b in &mut out[range] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    }
    // safety-of-unwrap not needed: masked bytes are ASCII spaces and the
    // untouched regions are the original (valid) UTF-8.
    String::from_utf8(out).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<(Kind, String)> {
        tokenize(text)
            .into_iter()
            .filter(|t| t.kind != Kind::Whitespace)
            .map(|t| (t.kind, t.text(text).to_string()))
            .collect()
    }

    #[test]
    fn spans_tile_byte_exactly() {
        let src = "fn main() { let s = \"a // not a comment\"; } // tail";
        let toks = tokenize(src);
        assert_eq!(toks[0].start, 0);
        for w in toks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert_eq!(toks.last().unwrap().end, src.len());
    }

    #[test]
    fn strings_hide_comment_markers() {
        let got = kinds("let s = \"// /* \\\" \";");
        assert!(got
            .iter()
            .any(|(k, t)| *k == Kind::Str && t == "\"// /* \\\" \""));
    }

    #[test]
    fn raw_strings_respect_hash_count() {
        let src = r###"let s = r#"inner " quote"# ; let t = r"x";"###;
        let got = kinds(src);
        assert!(got
            .iter()
            .any(|(k, t)| *k == Kind::Str && t == r##"r#"inner " quote"#"##));
        assert!(got.iter().any(|(k, t)| *k == Kind::Str && t == r#"r"x""#));
    }

    #[test]
    fn byte_and_c_strings_and_raw_idents() {
        let got = kinds(r##"let a = b"bytes"; let b = br#"raw"#; let c = c"c"; let r#match = 1;"##);
        assert_eq!(got.iter().filter(|(k, _)| *k == Kind::Str).count(), 3);
        assert!(got.iter().any(|(k, t)| *k == Kind::Word && t == "match"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let got = kinds("let c: char = 'a'; let e = '\\n'; fn f<'a>(x: &'a str) {} 'outer: loop {}");
        assert!(got.iter().any(|(k, t)| *k == Kind::Char && t == "'a'"));
        assert!(got.iter().any(|(k, t)| *k == Kind::Char && t == "'\\n'"));
        assert_eq!(got.iter().filter(|(k, _)| *k == Kind::Lifetime).count(), 3);
    }

    #[test]
    fn block_comments_nest() {
        let src = "a /* one /* two */ still */ b";
        let got = kinds(src);
        assert_eq!(got.len(), 3);
        assert_eq!(got[1].0, Kind::BlockComment);
        assert_eq!(got[1].1, "/* one /* two */ still */");
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\n/* two\nlines */\nb";
        let toks: Vec<Token> = tokenize(src).into_iter().filter(|t| !matches!(t.kind, Kind::Whitespace)).collect();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn code_mask_blanks_comments_and_literal_interiors() {
        let src = "call(); // .unwrap()\nlet s = \".expect(\"; /* panic! */";
        let toks = tokenize(src);
        let masked = code_mask(src, &toks);
        assert_eq!(masked.len(), src.len());
        assert!(!masked.contains(".unwrap()"));
        assert!(!masked.contains(".expect("));
        assert!(!masked.contains("panic!"));
        assert!(masked.contains("call();"));
        let kept = code_mask_keep_strings(src, &toks);
        assert!(kept.contains(".expect("));
        assert!(!kept.contains("panic!"));
    }

    #[test]
    fn unterminated_literals_close_at_eof() {
        for src in ["\"open", "r#\"open", "/* open", "'"] {
            let toks = tokenize(src);
            assert_eq!(toks.last().unwrap().end, src.len(), "{src:?}");
        }
    }
}
