//! The project-specific lints.
//!
//! Each lint is a plain function from workspace state to diagnostics; the
//! driver in [`crate::run_tidy`] filters the results through `tidy.allow`.
//! All lints are textual: they never fail on unparseable code, they just
//! stop matching — the compiler is the authority on syntax, tidy is the
//! authority on project policy.
//!
//! Two granularities coexist deliberately:
//!
//! * **token lints** match sequences in the trivia-free token stream
//!   (`no-unwrap`, `ordering-comment`, `unsafe-safety`, and the three
//!   extent lints) — multi-line constructs, comments, and string
//!   literals cannot fool them;
//! * **line lints** keep per-line state machines over the masked code
//!   view (`socket-timeout`, `span-paired`, `metrics-registered`) where
//!   "earlier in this file" is the natural unit of reasoning.

use std::collections::{BTreeMap, BTreeSet};

use crate::extent::ExtentKind;
use crate::source::SourceFile;
use crate::symbols::{self, is_failpoint_name, str_content};
use crate::tokenizer::Kind;
use crate::{Diagnostic, Workspace};

/// Files where panicking combinators are forbidden outside test code:
/// the join hot path (driver, parallel driver, index) and the two filter
/// kernels whose per-candidate cost dominates runs.
const HOT_PATH_FILES: [&str; 3] = [
    "crates/core/src/join.rs",
    "crates/core/src/parallel.rs",
    "crates/core/src/index.rs",
];
const HOT_PATH_DIRS: [&str; 3] = [
    "crates/cdf/src/",
    "crates/qgram/src/",
    "crates/simd/src/",
];

fn is_hot_path(rel_path: &str) -> bool {
    HOT_PATH_FILES.contains(&rel_path) || HOT_PATH_DIRS.iter().any(|d| rel_path.starts_with(d))
}

/// Is a `needle` justification present on the site token `ti`'s line or
/// within the `reach` **code** lines above it? Blank, comment-only, and
/// attribute lines are checked but never consume the budget — a
/// justification does not fall out of reach because prose, spacing, or an
/// attribute sits under it. The walk is scoped to the site's enclosing
/// `fn` extent: a code line with no token of that extent ends it, so a
/// comment inside the *previous* function can never justify this site.
fn justified_within(file: &SourceFile, ti: usize, reach: usize, needle: &str) -> bool {
    let i = file.toks[ti].line - 1;
    if file.lines[i].text.contains(needle) {
        return true;
    }
    let site_fn = file.extents.enclosing_fn(ti);
    let mut same_fn = vec![false; i];
    if site_fn.is_some() {
        for (k, t) in file.toks.iter().enumerate() {
            let ln = t.line - 1;
            if ln < i && !t.is_trivia() && file.extents.enclosing_fn(k) == site_fn {
                same_fn[ln] = true;
            }
        }
    }
    let mut budget = reach;
    for j in (0..i).rev() {
        let line = &file.lines[j];
        if line.text.contains(needle) {
            return true;
        }
        if line.comment_only || line.text.trim_start().starts_with("#[") {
            continue;
        }
        if site_fn.is_some() && !same_fn[j] {
            return false;
        }
        budget -= 1;
        if budget == 0 {
            return false;
        }
    }
    false
}

/// `no-unwrap`: `.unwrap()` / `.expect(` / `.unwrap_unchecked(` /
/// `panic!` in hot-path modules.
///
/// A panic inside the probe loop aborts the whole join (and under the
/// parallel driver, poisons shared state for every worker). Hot-path code
/// must either handle the case or carry an allowlisted, reason-bearing
/// `expect` documenting why the invariant cannot fail. Matching is
/// token-sequence based, so a chain split across lines
/// (`.foo()\n    .unwrap()`) is caught at the `unwrap` token's line.
pub fn no_unwrap(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in files {
        if !is_hot_path(&file.rel_path) {
            continue;
        }
        let m = file.meaningful();
        for w in 0..m.len() {
            let ti = m[w];
            if file.toks[ti].kind != Kind::Word {
                continue;
            }
            let text = |k: usize| m.get(k).map(|&t| file.tok_text(t)).unwrap_or("");
            let after_dot = w > 0 && text(w - 1) == ".";
            let pattern = match file.tok_text(ti) {
                "unwrap" if after_dot && text(w + 1) == "(" && text(w + 2) == ")" => ".unwrap()",
                "expect" if after_dot && text(w + 1) == "(" => ".expect(",
                "unwrap_unchecked" if after_dot && text(w + 1) == "(" => ".unwrap_unchecked(",
                "panic" if text(w + 1) == "!" => "panic!",
                _ => continue,
            };
            if file.tok_in_test(ti) {
                continue;
            }
            diags.push(Diagnostic {
                file: file.rel_path.clone(),
                line: file.toks[ti].line,
                lint: "no-unwrap".to_string(),
                message: format!(
                    "`{pattern}` in hot-path module — handle the error or allowlist \
                     with a reason in tidy.allow"
                ),
            });
        }
    }
    diags
}

/// Atomic memory-ordering names (`std::sync::atomic::Ordering`). The
/// `std::cmp::Ordering` variants (`Less`/`Equal`/`Greater`) are exempt —
/// comparison results need no fence justification.
const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// How many **code** lines above an atomic-ordering use may carry its
/// justification comment (blank/comment lines don't count).
const ORDERING_COMMENT_REACH: usize = 4;

/// `ordering-comment`: every atomic `Ordering::…` use must carry an
/// `ordering:` justification on the same line or within the preceding
/// [`ORDERING_COMMENT_REACH`] code lines.
///
/// Memory orderings encode a proof obligation the type system cannot see
/// (what happens-before edge makes this access sound?). PR 2's
/// determinism guarantees rest on exactly these justifications.
pub fn ordering_comment(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in files {
        let m = file.meaningful();
        for w in 0..m.len() {
            let ti = m[w];
            let text = |k: usize| m.get(k).map(|&t| file.tok_text(t)).unwrap_or("");
            if file.toks[ti].kind != Kind::Word
                || file.tok_text(ti) != "Ordering"
                || text(w + 1) != ":"
                || text(w + 2) != ":"
                || !ATOMIC_ORDERINGS.contains(&text(w + 3))
            {
                continue;
            }
            if justified_within(file, ti, ORDERING_COMMENT_REACH, "ordering:") {
                continue;
            }
            diags.push(Diagnostic {
                file: file.rel_path.clone(),
                line: file.toks[ti].line,
                lint: "ordering-comment".to_string(),
                message: "atomic Ordering use without an `// ordering:` justification \
                          comment on this line or the lines above"
                    .to_string(),
            });
        }
    }
    diags
}

/// How many **code** lines above an `unsafe` block may carry its
/// justification comment (mirrors [`ORDERING_COMMENT_REACH`]).
const SAFETY_COMMENT_REACH: usize = 4;

/// `unsafe-safety`: every `unsafe` block must carry a `safety:`
/// justification on the same line or within the preceding
/// [`SAFETY_COMMENT_REACH`] code lines.
///
/// An `unsafe` block is a claim that some obligation the compiler cannot
/// check (bounds, feature availability, aliasing) has been discharged by
/// hand — the comment is where that proof lives, and `usj-simd`'s
/// scalar==SIMD differential tests only cover the cases the proof
/// describes. `unsafe fn`/`unsafe impl`/`unsafe trait` declarations are
/// exempt: they *impose* an obligation rather than discharge one, and the
/// call site (an `unsafe` block) is where this lint demands the argument.
pub fn unsafe_safety(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in files {
        let m = file.meaningful();
        for w in 0..m.len() {
            let ti = m[w];
            if file.toks[ti].kind != Kind::Word || file.tok_text(ti) != "unsafe" {
                continue;
            }
            // Only `unsafe {` opens a *block*; `unsafe fn` / `unsafe impl`
            // / `unsafe trait` / `unsafe extern` declare.
            let next = m.get(w + 1).map(|&t| file.tok_text(t)).unwrap_or("");
            if next != "{" {
                continue;
            }
            if file.tok_in_test(ti) {
                continue;
            }
            if justified_within(file, ti, SAFETY_COMMENT_REACH, "safety:") {
                continue;
            }
            diags.push(Diagnostic {
                file: file.rel_path.clone(),
                line: file.toks[ti].line,
                lint: "unsafe-safety".to_string(),
                message: "`unsafe` block without a `// safety:` justification comment \
                          on this line or the lines above"
                    .to_string(),
            });
        }
    }
    diags
}

/// Blocking socket-read method calls. Each stalls a server worker thread
/// for as long as the peer cares to keep the connection open unless the
/// stream carries a read timeout.
const BLOCKING_READS: [&str; 5] = [
    ".read_line(",
    ".read_to_string(",
    ".read_exact(",
    ".read_to_end(",
    ".read(",
];

/// A socket read always fills a caller-supplied buffer, so an
/// argument-less `.read()` is the `RwLock` guard shape, not I/O.
fn has_blocking_read(code: &str) -> bool {
    BLOCKING_READS.iter().any(|p| {
        code.match_indices(p)
            .any(|(i, _)| !code[i + p.len()..].starts_with(')'))
    })
}

/// `socket-timeout`: in `crates/serve/src/` (the only crate that owns
/// sockets), every blocking read must come after a `set_read_timeout`
/// call earlier in the same file.
///
/// A worker that blocks forever on a slow-loris peer is a capacity leak
/// the admission controller cannot see: the queue stays short while every
/// worker is wedged. `usj-serve`'s overload guarantees assume all socket
/// IO is bounded, so the timeout must be installed before the first read
/// on every code path.
pub fn socket_timeout(files: &[SourceFile]) -> Vec<Diagnostic> {
    const SERVE_SRC: &str = "crates/serve/src/";
    let mut diags = Vec::new();
    for file in files {
        if !file.rel_path.starts_with(SERVE_SRC) {
            continue;
        }
        // First line (0-based) of non-test code that installs a read
        // timeout; reads on later lines are considered bounded.
        let timeout_at = file
            .lines
            .iter()
            .position(|l| !l.comment_only && !l.in_test && l.code().contains("set_read_timeout"));
        for (i, line) in file.lines.iter().enumerate() {
            if line.comment_only || line.in_test {
                continue;
            }
            let code = line.code();
            if !has_blocking_read(code) {
                continue;
            }
            if timeout_at.is_some_and(|t| t < i) {
                continue;
            }
            diags.push(Diagnostic {
                file: file.rel_path.clone(),
                line: line.number,
                lint: "socket-timeout".to_string(),
                message: "blocking read without a `set_read_timeout` earlier in this file — \
                          a slow peer would wedge the worker and starve the admission queue"
                    .to_string(),
            });
        }
    }
    diags
}

/// Crates whose non-test code must not write files with the raw
/// std APIs: every on-disk artifact they produce (datasets, checkpoints,
/// snapshots, traces, bench reports) is something a restart reads back,
/// so a crash mid-write must never leave a torn file in place.
const DURABLE_WRITE_DIRS: [&str; 3] = [
    "crates/core/src/",
    "crates/serve/src/",
    "crates/cli/src/",
];

/// `durable-write`: in the durable-artifact crates, non-test code must
/// not call `File::create(` / `File::create_new(` / `fs::write(`
/// directly — the `durable_atomic_write` helpers (write a temporary,
/// fsync, atomically rename) are the only path to disk.
///
/// The snapshot and checkpoint recovery ladders assume every committed
/// file is either the old image or the new one, never a prefix. A raw
/// write that the reviewer believes is "not durable state" still needs
/// that argument recorded: implement it via the helper, or allowlist it
/// with the reason. The helper's own body is exempt — it is where the
/// raw calls are supposed to live.
pub fn durable_write(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in files {
        if !DURABLE_WRITE_DIRS
            .iter()
            .any(|d| file.rel_path.starts_with(d))
        {
            continue;
        }
        let m = file.meaningful();
        for w in 0..m.len() {
            let ti = m[w];
            if file.toks[ti].kind != Kind::Word {
                continue;
            }
            let text = |k: usize| m.get(k).map(|&t| file.tok_text(t)).unwrap_or("");
            // Token shapes: `File :: create (` / `fs :: write (` — the
            // `::` qualifier distinguishes them from `.write()` lock
            // guards and from the helper's own name.
            let qualified = |q: &str| {
                w >= 3 && text(w - 1) == ":" && text(w - 2) == ":" && text(w - 3) == q
            };
            let pattern = match file.tok_text(ti) {
                "create" if text(w + 1) == "(" && qualified("File") => "File::create(",
                "create_new" if text(w + 1) == "(" && qualified("File") => "File::create_new(",
                "write" if text(w + 1) == "(" && qualified("fs") => "fs::write(",
                _ => continue,
            };
            if file.tok_in_test(ti) {
                continue;
            }
            let in_helper = file
                .extents
                .enclosing_fn(ti)
                .is_some_and(|e| file.extents.extents[e].name.starts_with("durable_atomic_write"));
            if in_helper {
                continue;
            }
            diags.push(Diagnostic {
                file: file.rel_path.clone(),
                line: file.toks[ti].line,
                lint: "durable-write".to_string(),
                message: format!(
                    "raw file write (`{pattern}`) outside the durable helper — a crash \
                     mid-write leaves a torn file; route it through \
                     `usj_core::durable_atomic_write`, or allowlist with the reason it \
                     need not be atomic"
                ),
            });
        }
    }
    diags
}

/// Parsed metric taxonomy from `crates/obs/src/lib.rs`: for `Counter` and
/// `Gauge`, the enum variants, the variants listed in the `ALL` array, and
/// the `variant -> "snake_name"` map from the `name()` match arms.
#[derive(Debug, Default)]
struct Taxonomy {
    variants: BTreeMap<String, usize>, // variant -> declaration line
    in_all: BTreeSet<String>,
    names: BTreeMap<String, (String, usize)>, // variant -> (snake name, arm line)
}

fn parse_taxonomy(lib: &SourceFile, kind: &str) -> Taxonomy {
    let mut t = Taxonomy::default();
    let enum_header = format!("enum {kind} ");
    let enum_header_brace = format!("enum {kind} {{");
    let all_header = format!("ALL: [{kind};");
    let use_prefix = format!("{kind}::");
    let mut in_enum = false;
    let mut in_all = false;
    for line in &lib.lines {
        // String contents stay visible here: the `name()` arms map
        // variants to quoted snake_names.
        let code = line.code_with_strings();
        let trimmed = code.trim();
        if trimmed.contains(&enum_header_brace) || trimmed.ends_with(enum_header.trim_end()) {
            in_enum = true;
            continue;
        }
        if in_enum {
            if trimmed.starts_with('}') {
                in_enum = false;
            } else if let Some(variant) = trimmed.strip_suffix(',') {
                let variant = variant.trim();
                if !variant.is_empty()
                    && variant
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_uppercase())
                    && variant.chars().all(|c| c.is_ascii_alphanumeric())
                {
                    t.variants.insert(variant.to_string(), line.number);
                }
            }
            continue;
        }
        if trimmed.contains(&all_header) {
            in_all = true;
        }
        if in_all {
            for (at, _) in code.match_indices(&use_prefix) {
                let rest = &code[at + use_prefix.len()..];
                let ident: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric())
                    .collect();
                if !ident.is_empty() {
                    t.in_all.insert(ident);
                }
            }
            if trimmed.ends_with("];") {
                in_all = false;
            }
            continue;
        }
        // name() match arms: `Kind::Variant => "snake_name",`
        if let Some(at) = code.find(&use_prefix) {
            if let Some(arrow) = code.find("=>") {
                let ident: String = code[at + use_prefix.len()..]
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric())
                    .collect();
                let after = &code[arrow + 2..];
                if let Some(q1) = after.find('"') {
                    if let Some(q2) = after[q1 + 1..].find('"') {
                        let name = &after[q1 + 1..q1 + 1 + q2];
                        if !ident.is_empty() {
                            t.names.insert(ident, (name.to_string(), line.number));
                        }
                    }
                }
            }
        }
    }
    t
}

/// `metrics-registered`: every `Counter::X` / `Gauge::X` the workspace
/// records must be a declared variant that is listed in the `ALL` array,
/// has a stable snake_case name, and whose name appears in the golden
/// schema test of `crates/obs/src/collect.rs`.
///
/// The obs snapshot is schema-stable by contract (downstream tooling keys
/// on it); an unregistered metric would silently vanish from snapshots or
/// shift the dense index arrays.
pub fn metrics_registered(ws: &Workspace) -> Vec<Diagnostic> {
    const OBS_LIB: &str = "crates/obs/src/lib.rs";
    const OBS_GOLDEN: &str = "crates/obs/src/collect.rs";
    let mut diags = Vec::new();

    let mut uses: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    for file in &ws.rust_files {
        if file.rel_path == OBS_LIB {
            continue;
        }
        for line in &file.lines {
            if line.comment_only {
                continue;
            }
            let code = line.code();
            for kind in ["Counter", "Gauge"] {
                let prefix = format!("{kind}::");
                for (at, _) in code.match_indices(&prefix) {
                    let rest = &code[at + prefix.len()..];
                    let ident: String = rest
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric())
                        .collect();
                    if ident.is_empty() || ident == "ALL" {
                        continue;
                    }
                    uses.entry((kind.to_string(), ident))
                        .or_insert_with(|| (file.rel_path.clone(), line.number));
                }
            }
        }
    }
    if uses.is_empty() {
        return diags;
    }

    let Some(lib) = ws.rust_files.iter().find(|f| f.rel_path == OBS_LIB) else {
        let ((_, ident), (file, line)) = uses.iter().next().expect("uses is non-empty");
        diags.push(Diagnostic {
            file: file.clone(),
            line: *line,
            lint: "metrics-registered".to_string(),
            message: format!(
                "metric `{ident}` recorded but {OBS_LIB} is missing — cannot resolve the taxonomy"
            ),
        });
        return diags;
    };
    // The golden check scans the file's full text on purpose: the golden
    // snapshot lives inside a raw string, and pinned keys may also appear
    // in commentary.
    let golden = ws
        .rust_files
        .iter()
        .find(|f| f.rel_path == OBS_GOLDEN)
        .map(|f| f.text.clone())
        .unwrap_or_default();

    for kind in ["Counter", "Gauge"] {
        let tax = parse_taxonomy(lib, kind);
        // Every recorded variant must be declared.
        for ((k, ident), (file, line)) in &uses {
            if k == kind && !tax.variants.contains_key(ident) {
                diags.push(Diagnostic {
                    file: file.clone(),
                    line: *line,
                    lint: "metrics-registered".to_string(),
                    message: format!(
                        "`{kind}::{ident}` is not a declared {kind} variant in {OBS_LIB}"
                    ),
                });
            }
        }
        // Every declared variant must be fully registered.
        for (variant, decl_line) in &tax.variants {
            if !tax.in_all.contains(variant) {
                diags.push(Diagnostic {
                    file: OBS_LIB.to_string(),
                    line: *decl_line,
                    lint: "metrics-registered".to_string(),
                    message: format!("{kind}::{variant} is missing from {kind}::ALL"),
                });
            }
            match tax.names.get(variant) {
                None => diags.push(Diagnostic {
                    file: OBS_LIB.to_string(),
                    line: *decl_line,
                    lint: "metrics-registered".to_string(),
                    message: format!("{kind}::{variant} has no `name()` match arm"),
                }),
                Some((name, arm_line)) => {
                    if !golden.contains(&format!("\"{name}\"")) {
                        diags.push(Diagnostic {
                            file: OBS_LIB.to_string(),
                            line: *arm_line,
                            lint: "metrics-registered".to_string(),
                            message: format!(
                                "metric key \"{name}\" is absent from the golden schema test in \
                                 {OBS_GOLDEN} — register it in the expected snapshot"
                            ),
                        });
                    }
                }
            }
        }
    }
    diags
}

/// Directories where phase spans must stay balanced: the join drivers and
/// the query service — the two places whose spans feed the Chrome trace
/// and the Prometheus phase series.
const SPAN_PAIRED_DIRS: [&str; 2] = ["crates/core/src/", "crates/serve/src/"];

/// A `?` acting as the try operator (as opposed to `{x:?}` debug formats,
/// which the masked code view hides along with every other string
/// interior): previous char closes an expression, next non-space char
/// ends one.
fn has_try_operator(code: &str) -> bool {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'?' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1] as char;
        if !(prev == ')' || prev == ']' || prev == '}' || prev.is_ascii_alphanumeric() || prev == '_')
        {
            continue;
        }
        let next = code[i + 1..].trim_start().chars().next();
        if matches!(next, None | Some(';' | '.' | ')' | ',' | '}')) {
            return true;
        }
    }
    false
}

/// `span-paired`: in the span-bearing directories, every manual
/// `.enter_phase(` must be closed by an `.exit_phase(` in the same file,
/// with no early exit (`return` or `?`) while a span is open.
///
/// An unexited span skews `usj_phase_ns_total`, leaves its Chrome trace
/// event unclosed, and (under the tuple recorders) desynchronises the
/// span stack for every later phase. The RAII [`usj_obs::PhaseGuard`]
/// closes on every path — code with nontrivial control flow should use it
/// instead of the raw pair.
pub fn span_paired(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in files {
        if !SPAN_PAIRED_DIRS.iter().any(|d| file.rel_path.starts_with(d)) {
            continue;
        }
        // Line numbers of enter_phase calls not yet matched by an exit.
        let mut open: Vec<usize> = Vec::new();
        for line in &file.lines {
            if line.comment_only || line.in_test {
                continue;
            }
            let code = line.code();
            if !open.is_empty()
                && (code.contains("return") || has_try_operator(code))
                && !code.contains(".exit_phase(")
            {
                diags.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: line.number,
                    lint: "span-paired".to_string(),
                    message: format!(
                        "early exit while the phase span opened on line {} is still open — \
                         the span would leak; close it first or use `usj_obs::PhaseGuard`",
                        open[open.len() - 1]
                    ),
                });
            }
            for _ in code.match_indices(".enter_phase(") {
                open.push(line.number);
            }
            for _ in code.match_indices(".exit_phase(") {
                if open.pop().is_none() {
                    diags.push(Diagnostic {
                        file: file.rel_path.clone(),
                        line: line.number,
                        lint: "span-paired".to_string(),
                        message: "`.exit_phase(` without a matching `.enter_phase(` earlier \
                                  in this file"
                            .to_string(),
                    });
                }
            }
        }
        for opened_at in open {
            diags.push(Diagnostic {
                file: file.rel_path.clone(),
                line: opened_at,
                lint: "span-paired".to_string(),
                message: "`.enter_phase(` never matched by an `.exit_phase(` in this file — \
                          the span leaks; pair it or use `usj_obs::PhaseGuard`"
                    .to_string(),
            });
        }
    }
    diags
}

/// External crates the workspace may depend on. Everything else must be a
/// path-internal `usj-*` crate or an explicit tidy.allow exception — the
/// build environment cannot reach crates.io, so an unvetted dependency is
/// a broken build, not just a policy question.
const ALLOWED_EXTERNAL_DEPS: [&str; 5] = ["rand", "proptest", "criterion", "serde", "serde_json"];

/// `dep-allowlist`: scan every manifest's dependency sections.
pub fn dep_allowlist(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for manifest in &ws.manifests {
        let mut in_dep_section = false;
        for (i, raw) in manifest.text.lines().enumerate() {
            let line = raw.trim();
            if line.starts_with('[') {
                in_dep_section = line.ends_with("dependencies]");
                continue;
            }
            if !in_dep_section || line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some(eq) = line.find('=') else { continue };
            let name = line[..eq].trim().trim_matches('"');
            let name = name.strip_suffix(".workspace").unwrap_or(name);
            let value = &line[eq + 1..];
            let internal = name.starts_with("usj-")
                || name == "uncertain-join"
                || value.contains("path =")
                || value.contains("path=");
            if !internal && !ALLOWED_EXTERNAL_DEPS.contains(&name) {
                diags.push(Diagnostic {
                    file: manifest.rel_path.clone(),
                    line: i + 1,
                    lint: "dep-allowlist".to_string(),
                    message: format!(
                        "external dependency `{name}` is not in the allowed set \
                         ({}) — the build environment is offline; vendor, stub, or allowlist it",
                        ALLOWED_EXTERNAL_DEPS.join(", ")
                    ),
                });
            }
        }
    }
    diags
}

/// `doc-drift`: the docs the next session navigates by must track the
/// code. Two checks:
///
/// * every crate directory under `crates/` is mentioned in `DESIGN.md`
///   (as `crates/<name>` or `usj-<name>`);
/// * `CHANGES.md` carries one `- PR <n>:` line per PR, numbered
///   consecutively from 1.
pub fn doc_drift(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if let Some(design) = &ws.design_md {
        for name in &ws.crate_dirs {
            if !design.contains(&format!("crates/{name}"))
                && !design.contains(&format!("usj-{name}"))
            {
                diags.push(Diagnostic {
                    file: "DESIGN.md".to_string(),
                    line: 1,
                    lint: "doc-drift".to_string(),
                    message: format!(
                        "crate `crates/{name}` is absent from DESIGN.md — add it to the \
                         system inventory"
                    ),
                });
            }
        }
    }
    if let Some(changes) = &ws.changes_md {
        let mut expected = 1u64;
        for (i, raw) in changes.lines().enumerate() {
            let Some(rest) = raw.strip_prefix("- PR ") else {
                continue;
            };
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            let tail = &rest[digits.len()..];
            let parsed: Option<u64> = digits.parse().ok();
            match parsed {
                Some(n) if tail.starts_with(':') => {
                    if n != expected {
                        diags.push(Diagnostic {
                            file: "CHANGES.md".to_string(),
                            line: i + 1,
                            lint: "doc-drift".to_string(),
                            message: format!(
                                "PR lines must be consecutive: expected `- PR {expected}:`, \
                                 found `- PR {n}:`"
                            ),
                        });
                    }
                    expected = n + 1;
                }
                _ => diags.push(Diagnostic {
                    file: "CHANGES.md".to_string(),
                    line: i + 1,
                    lint: "doc-drift".to_string(),
                    message: "malformed PR line — expected `- PR <n>: <summary>`".to_string(),
                }),
            }
        }
    }
    diags
}

/// The files whose probe/search extents must keep their loops budgeted
/// (plus everything under `crates/serve/src/`).
const BUDGET_FILES: [&str; 4] = [
    "crates/core/src/collection.rs",
    "crates/core/src/index.rs",
    "crates/core/src/join.rs",
    "crates/core/src/parallel.rs",
];

/// A loop body "consults the budget" when it mentions one of these words
/// (`ProbeBudget`, `probe_budget`, `check_deadline`, `cancel` flags all
/// contain one).
const BUDGET_WORDS: [&str; 3] = ["budget", "deadline", "cancel"];

fn in_budget_scope(rel_path: &str) -> bool {
    BUDGET_FILES.contains(&rel_path) || rel_path.starts_with("crates/serve/src/")
}

/// `budget-loop`: every `loop` / `while` / `for` inside a probe/search
/// function in the budget-scoped files must consult `ProbeBudget` /
/// deadline / cancellation within its body.
///
/// The (k,τ) probe loops are where a request spends unbounded time; the
/// serve deadline ladder and the parallel driver's cooperative
/// cancellation only work if every such loop re-checks its budget. A loop
/// that cannot check in-body (e.g. because per-item checks would break
/// bit-identity with the sequential driver) must name the mechanism that
/// bounds it in a tidy.allow reason.
pub fn budget_loop(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in files {
        if !in_budget_scope(&file.rel_path) {
            continue;
        }
        let m = file.meaningful();
        for e in &file.extents.extents {
            if e.kind != ExtentKind::Fn || e.is_test {
                continue;
            }
            let lname = e.name.to_lowercase();
            if !lname.contains("probe") && !lname.contains("search") {
                continue;
            }
            // Meaningful-token positions inside the extent body.
            let start = m.partition_point(|&t| t < e.body.0);
            let end = m.partition_point(|&t| t <= e.body.1);
            let mut w = start;
            while w < end {
                let ti = m[w];
                let kw = file.tok_text(ti);
                let is_loop_kw = file.toks[ti].kind == Kind::Word
                    && matches!(kw, "loop" | "while" | "for");
                if !is_loop_kw {
                    w += 1;
                    continue;
                }
                // `for<'a>` higher-ranked bounds are not loops.
                if kw == "for"
                    && m.get(w + 1)
                        .is_some_and(|&t| file.tok_text(t) == "<")
                {
                    w += 1;
                    continue;
                }
                let Some((_open, close)) = loop_body(file, &m, w, end) else {
                    w += 1;
                    continue;
                };
                // Scan from the keyword so a `while !budget.done()`
                // condition counts as consulting, not just the body.
                let consults = (w..=close).any(|k| {
                    let t = m[k];
                    file.toks[t].kind == Kind::Word
                        && BUDGET_WORDS
                            .iter()
                            .any(|b| file.tok_text(t).to_lowercase().contains(b))
                });
                if !consults {
                    diags.push(Diagnostic {
                        file: file.rel_path.clone(),
                        line: file.toks[ti].line,
                        lint: "budget-loop".to_string(),
                        message: format!(
                            "`{kw}` loop in probe/search fn `{}` never consults its \
                             ProbeBudget/deadline — probe loops must stay cancellable; \
                             check the budget in-body or allowlist with the bounding \
                             mechanism as the reason",
                            e.name
                        ),
                    });
                }
                // Continue scanning *inside* the body too (nested loops
                // each need their own consult or inherit via contains).
                w += 1;
            }
        }
    }
    diags
}

/// Finds the `{ … }` body of the loop keyword at meaningful-position
/// `w`: the first `{` at paren/bracket depth 0 after the keyword, and
/// its matching `}`. Returns meaningful-positions `(open, close)`.
fn loop_body(file: &SourceFile, m: &[usize], w: usize, limit: usize) -> Option<(usize, usize)> {
    let mut j = w + 1;
    let mut depth = 0i64;
    let open = loop {
        if j >= limit {
            return None;
        }
        match file.tok_text(m[j]) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => break j,
            ";" if depth == 0 => return None,
            _ => {}
        }
        j += 1;
    };
    let mut braces = 0i64;
    for k in open..limit {
        match file.tok_text(m[k]) {
            "{" => braces += 1,
            "}" => {
                braces -= 1;
                if braces == 0 {
                    return Some((open, k));
                }
            }
            _ => {}
        }
    }
    Some((open, limit.saturating_sub(1)))
}

/// `failpoint-coverage`: the failpoint economy must balance, in both
/// directions, across the whole workspace:
///
/// 1. every non-test `catch_unwind` recovery site carries a named
///    failpoint in the same fn extent (directly, or one call away via a
///    helper that fires) — otherwise the fault suites cannot exercise
///    the recovery path;
/// 2. every failpoint name referenced by a fault-plan spec or arming
///    call resolves to a defined point (a typo'd name silently never
///    fires);
/// 3. every defined failpoint is referenced by at least one test-side
///    string (a point no suite arms is dead weight).
pub fn failpoint_coverage(ws: &Workspace) -> Vec<Diagnostic> {
    let table = symbols::failpoints(&ws.rust_files);
    let mut diags = Vec::new();

    // (1) catch_unwind sites.
    for file in &ws.rust_files {
        let m = file.meaningful();
        for w in 0..m.len() {
            let ti = m[w];
            if file.toks[ti].kind != Kind::Word
                || file.tok_text(ti) != "catch_unwind"
                || m.get(w + 1).map(|&t| file.tok_text(t)) != Some("(")
                || file.tok_in_test(ti)
            {
                continue;
            }
            let Some(e) = file.extents.enclosing_fn(ti) else {
                continue;
            };
            let ext = &file.extents.extents[e];
            let start = m.partition_point(|&t| t < ext.body.0);
            let end = m.partition_point(|&t| t <= ext.body.1);
            let covered = (start..end).any(|k| {
                let t = m[k];
                match file.toks[t].kind {
                    // A named failpoint in the extent (as a carrier
                    // argument or a forwarded name).
                    Kind::Str => is_failpoint_name(str_content(file.tok_text(t))),
                    // A call to a helper that fires directly.
                    Kind::Word => {
                        table.fn_fires.contains(file.tok_text(t))
                            && m.get(k + 1).map(|&n| file.tok_text(n)) == Some("(")
                    }
                    _ => false,
                }
            });
            if !covered {
                diags.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: file.toks[ti].line,
                    lint: "failpoint-coverage".to_string(),
                    message: format!(
                        "`catch_unwind` in fn `{}` without a named failpoint in the same \
                         extent — fault-injection tests cannot reach this recovery path; \
                         add a `fail_point!` or allowlist naming where the coverage lives",
                        ext.name
                    ),
                });
            }
        }
    }

    // (2) strict references resolve.
    for (name, file, line) in &table.strict_refs {
        if !table.defined.contains_key(name) && !table.defined_test.contains(name) {
            diags.push(Diagnostic {
                file: file.clone(),
                line: *line,
                lint: "failpoint-coverage".to_string(),
                message: format!(
                    "fault plan references failpoint `{name}`, which is defined nowhere \
                     in source — the injection would silently never fire"
                ),
            });
        }
    }

    // (3) every defined point is exercised.
    for (name, def) in &table.defined {
        if !table.test_literals.iter().any(|l| l.contains(name)) {
            diags.push(Diagnostic {
                file: def.file.clone(),
                line: def.line,
                lint: "failpoint-coverage".to_string(),
                message: format!(
                    "failpoint `{name}` is never referenced by any test or fault plan — \
                     add a fault-suite case or remove the dead injection point"
                ),
            });
        }
    }
    diags
}

/// Directories where lock guards must not outlive hazards.
const LOCK_DIRS: [&str; 2] = ["crates/core/src/", "crates/serve/src/"];

/// Method calls that block on a peer (or the clock) indefinitely from a
/// guard's point of view.
const GUARD_BLOCKING: [&str; 6] = [
    "read_line",
    "read_to_string",
    "read_exact",
    "read_to_end",
    "accept",
    "connect",
];

/// `lock-discipline`: no `Mutex`/`RwLock` guard binding may stay live
/// across a `catch_unwind`, a failpoint, a blocking I/O call, or a sleep
/// within its extent.
///
/// A panic caught while a guard is held poisons the lock for every other
/// worker; a failpoint is *by design* a place where tests inject panics
/// and delays; a blocking read holds the lock for as long as the peer
/// stalls. The fix is always the same: narrow the guard's scope (block
/// or `drop(guard)`) before the hazard.
pub fn lock_discipline(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in files {
        if !LOCK_DIRS.iter().any(|d| file.rel_path.starts_with(d)) {
            continue;
        }
        let m = file.meaningful();
        let text = |k: usize| m.get(k).map(|&t| file.tok_text(t)).unwrap_or("");
        let mut guards: Vec<GuardInfo> = Vec::new();
        let mut depth = 0i64;
        for w in 0..m.len() {
            let ti = m[w];
            let tok = file.tok_text(ti);
            match tok {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                }
                "drop" if text(w + 1) == "(" && text(w + 3) == ")" => {
                    let dropped = text(w + 2).to_string();
                    guards.retain(|g| g.name != dropped);
                }
                "let" => {
                    if let Some(g) = guard_binding(file, &m, w, depth) {
                        if !file.tok_in_test(ti) {
                            guards.push(g);
                        }
                    }
                }
                _ => {}
            }
            if guards.iter().all(|g| g.live_from > w) {
                continue;
            }
            if file.tok_in_test(ti) || file.toks[ti].kind != Kind::Word {
                continue;
            }
            let hazard = match tok {
                "catch_unwind" if text(w + 1) == "(" => Some("catch_unwind"),
                "fail_point" if text(w + 1) == "!" => Some("fail_point!"),
                "fire" | "fire_err" if text(w + 1) == "(" => Some("a failpoint"),
                "sleep" if text(w + 1) == "(" => Some("sleep"),
                b if GUARD_BLOCKING.contains(&b) && text(w + 1) == "(" && w > 0 && text(w - 1) == "." => {
                    Some("blocking I/O")
                }
                _ => None,
            };
            let Some(hazard) = hazard else { continue };
            for g in guards.iter().filter(|g| g.live_from <= w) {
                diags.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: file.toks[ti].line,
                    lint: "lock-discipline".to_string(),
                    message: format!(
                        "lock guard `{}` (acquired on line {}) is live across {hazard} \
                         (`{tok}`) — a panic or stall here holds the lock; drop or \
                         re-scope the guard first",
                        g.name, g.line
                    ),
                });
            }
        }
    }
    diags
}

/// Parses a `let [mut] name [: Type] = init;` at meaningful-position `w`
/// and decides whether `init`/`Type` acquires a lock guard: a `.lock(`
/// call, a guard type name, or an argument-less `.read()` / `.write()`
/// (the `RwLock` shape — I/O reads and writes always take arguments).
fn guard_binding(file: &SourceFile, m: &[usize], w: usize, depth: i64) -> Option<GuardInfo> {
    let text = |k: usize| m.get(k).map(|&t| file.tok_text(t)).unwrap_or("");
    let mut j = w + 1;
    if text(j) == "mut" {
        j += 1;
    }
    let name_ti = *m.get(j)?;
    if file.toks[name_ti].kind != Kind::Word {
        return None;
    }
    let name = file.tok_text(name_ti).to_string();
    if !matches!(text(j + 1), "=" | ":") {
        return None; // destructuring / pattern bindings: out of scope
    }
    // Scan the initializer (and annotation) to the terminating `;` at
    // bracket depth 0, looking for the guard shapes.
    let mut k = j + 1;
    let mut inner = 0i64;
    let mut is_guard = false;
    while k < m.len() {
        match text(k) {
            "(" | "[" | "{" => inner += 1,
            ")" | "]" | "}" => inner -= 1,
            ";" if inner == 0 => break,
            "lock" if text(k - 1) == "." && text(k + 1) == "(" => is_guard = true,
            "read" | "write" if text(k - 1) == "." && text(k + 1) == "(" && text(k + 2) == ")" => {
                is_guard = true
            }
            "MutexGuard" | "RwLockReadGuard" | "RwLockWriteGuard" => is_guard = true,
            _ => {}
        }
        k += 1;
    }
    if !is_guard {
        return None;
    }
    Some(GuardInfo {
        name,
        depth,
        line: file.toks[name_ti].line,
        live_from: k,
    })
}

/// A live lock-guard binding (see [`lock_discipline`]).
struct GuardInfo {
    /// Binding name (what `drop(name)` releases).
    name: String,
    /// Brace depth at the binding — the guard dies when its block closes.
    depth: i64,
    /// 1-based line of the binding.
    line: usize,
    /// Meaningful-token position of the terminating `;`: the guard is
    /// only live *after* its initializer completes.
    live_from: usize,
}
