//! The project-specific lints.
//!
//! Each lint is a plain function from workspace state to diagnostics; the
//! driver in [`crate::run_tidy`] filters the results through `tidy.allow`.
//! All lints are textual: they never fail on unparseable code, they just
//! stop matching — the compiler is the authority on syntax, tidy is the
//! authority on project policy.

use std::collections::{BTreeMap, BTreeSet};

use crate::source::SourceFile;
use crate::{Diagnostic, Workspace};

/// Files where panicking combinators are forbidden outside test code:
/// the join hot path (driver, parallel driver, index) and the two filter
/// kernels whose per-candidate cost dominates runs.
const HOT_PATH_FILES: [&str; 3] = [
    "crates/core/src/join.rs",
    "crates/core/src/parallel.rs",
    "crates/core/src/index.rs",
];
const HOT_PATH_DIRS: [&str; 3] = [
    "crates/cdf/src/",
    "crates/qgram/src/",
    "crates/simd/src/",
];

fn is_hot_path(rel_path: &str) -> bool {
    HOT_PATH_FILES.contains(&rel_path) || HOT_PATH_DIRS.iter().any(|d| rel_path.starts_with(d))
}

/// `no-unwrap`: `.unwrap()` / `.expect(` / `panic!` in hot-path modules.
///
/// A panic inside the probe loop aborts the whole join (and under the
/// parallel driver, poisons shared state for every worker). Hot-path code
/// must either handle the case or carry an allowlisted, reason-bearing
/// `expect` documenting why the invariant cannot fail.
pub fn no_unwrap(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in files {
        if !is_hot_path(&file.rel_path) {
            continue;
        }
        for line in &file.lines {
            if line.comment_only || line.in_test {
                continue;
            }
            let code = line.code();
            for pattern in [".unwrap()", ".expect(", "panic!"] {
                if code.contains(pattern) {
                    diags.push(Diagnostic {
                        file: file.rel_path.clone(),
                        line: line.number,
                        lint: "no-unwrap".to_string(),
                        message: format!(
                            "`{pattern}` in hot-path module — handle the error or allowlist \
                             with a reason in tidy.allow"
                        ),
                    });
                }
            }
        }
    }
    diags
}

/// Atomic memory-ordering names (`std::sync::atomic::Ordering`). The
/// `std::cmp::Ordering` variants (`Less`/`Equal`/`Greater`) are exempt —
/// comparison results need no fence justification.
const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// How many lines above an atomic-ordering use may carry its
/// justification comment.
const ORDERING_COMMENT_REACH: usize = 4;

/// `ordering-comment`: every atomic `Ordering::…` use must carry an
/// `ordering:` justification on the same line or within the preceding
/// [`ORDERING_COMMENT_REACH`] lines.
///
/// Memory orderings encode a proof obligation the type system cannot see
/// (what happens-before edge makes this access sound?). PR 2's
/// determinism guarantees rest on exactly these justifications.
pub fn ordering_comment(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in files {
        for (i, line) in file.lines.iter().enumerate() {
            if line.comment_only {
                continue;
            }
            let code = line.code();
            let uses_atomic = code.match_indices("Ordering::").any(|(at, _)| {
                let rest = &code[at + "Ordering::".len()..];
                ATOMIC_ORDERINGS.iter().any(|o| rest.starts_with(o))
            });
            if !uses_atomic {
                continue;
            }
            let lo = i.saturating_sub(ORDERING_COMMENT_REACH);
            let justified = file.lines[lo..=i]
                .iter()
                .any(|l| l.text.contains("ordering:"));
            if !justified {
                diags.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: line.number,
                    lint: "ordering-comment".to_string(),
                    message: "atomic Ordering use without an `// ordering:` justification \
                              comment on this line or the lines above"
                        .to_string(),
                });
            }
        }
    }
    diags
}

/// How many lines above an `unsafe` block may carry its justification
/// comment (mirrors [`ORDERING_COMMENT_REACH`]).
const SAFETY_COMMENT_REACH: usize = 4;

/// `unsafe-safety`: every `unsafe` block must carry a `safety:`
/// justification on the same line or within the preceding
/// [`SAFETY_COMMENT_REACH`] lines.
///
/// An `unsafe` block is a claim that some obligation the compiler cannot
/// check (bounds, feature availability, aliasing) has been discharged by
/// hand — the comment is where that proof lives, and `usj-simd`'s
/// scalar==SIMD differential tests only cover the cases the proof
/// describes. `unsafe fn`/`unsafe impl`/`unsafe trait` declarations are
/// exempt: they *impose* an obligation rather than discharge one, and the
/// call site (an `unsafe` block) is where this lint demands the argument.
pub fn unsafe_safety(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in files {
        for (i, line) in file.lines.iter().enumerate() {
            if line.comment_only || line.in_test {
                continue;
            }
            let code = line.code();
            let bytes = code.as_bytes();
            let opens_block = code.match_indices("unsafe").any(|(at, _)| {
                // A word-boundary `unsafe` followed by `{` (possibly on
                // the next line). Quote-adjacent occurrences are string
                // literals (this lint's own source), not blocks.
                let word_start = at == 0
                    || !(bytes[at - 1].is_ascii_alphanumeric()
                        || bytes[at - 1] == b'_'
                        || bytes[at - 1] == b'"');
                let after = &code[at + "unsafe".len()..];
                let opens = after.is_empty()
                    || after.starts_with('{')
                    || after.starts_with(char::is_whitespace);
                let declares = ["fn ", "impl ", "trait ", "extern "]
                    .iter()
                    .any(|kw| after.trim_start().starts_with(kw));
                word_start && opens && !declares
            });
            if !opens_block {
                continue;
            }
            let lo = i.saturating_sub(SAFETY_COMMENT_REACH);
            let justified = file.lines[lo..=i].iter().any(|l| l.text.contains("safety:"));
            if !justified {
                diags.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: line.number,
                    lint: "unsafe-safety".to_string(),
                    message: "`unsafe` block without a `// safety:` justification comment \
                              on this line or the lines above"
                        .to_string(),
                });
            }
        }
    }
    diags
}

/// Blocking socket-read method calls. Each stalls a server worker thread
/// for as long as the peer cares to keep the connection open unless the
/// stream carries a read timeout.
const BLOCKING_READS: [&str; 5] = [
    ".read_line(",
    ".read_to_string(",
    ".read_exact(",
    ".read_to_end(",
    ".read(",
];

/// `socket-timeout`: in `crates/serve/src/` (the only crate that owns
/// sockets), every blocking read must come after a `set_read_timeout`
/// call earlier in the same file.
///
/// A worker that blocks forever on a slow-loris peer is a capacity leak
/// the admission controller cannot see: the queue stays short while every
/// worker is wedged. `usj-serve`'s overload guarantees assume all socket
/// IO is bounded, so the timeout must be installed before the first read
/// on every code path.
pub fn socket_timeout(files: &[SourceFile]) -> Vec<Diagnostic> {
    const SERVE_SRC: &str = "crates/serve/src/";
    let mut diags = Vec::new();
    for file in files {
        if !file.rel_path.starts_with(SERVE_SRC) {
            continue;
        }
        // First line (0-based) of non-test code that installs a read
        // timeout; reads on later lines are considered bounded.
        let timeout_at = file
            .lines
            .iter()
            .position(|l| !l.comment_only && !l.in_test && l.code().contains("set_read_timeout"));
        for (i, line) in file.lines.iter().enumerate() {
            if line.comment_only || line.in_test {
                continue;
            }
            let code = line.code();
            if !BLOCKING_READS.iter().any(|p| code.contains(p)) {
                continue;
            }
            if timeout_at.is_some_and(|t| t < i) {
                continue;
            }
            diags.push(Diagnostic {
                file: file.rel_path.clone(),
                line: line.number,
                lint: "socket-timeout".to_string(),
                message: "blocking read without a `set_read_timeout` earlier in this file — \
                          a slow peer would wedge the worker and starve the admission queue"
                    .to_string(),
            });
        }
    }
    diags
}

/// Parsed metric taxonomy from `crates/obs/src/lib.rs`: for `Counter` and
/// `Gauge`, the enum variants, the variants listed in the `ALL` array, and
/// the `variant -> "snake_name"` map from the `name()` match arms.
#[derive(Debug, Default)]
struct Taxonomy {
    variants: BTreeMap<String, usize>, // variant -> declaration line
    in_all: BTreeSet<String>,
    names: BTreeMap<String, (String, usize)>, // variant -> (snake name, arm line)
}

fn parse_taxonomy(lib: &SourceFile, kind: &str) -> Taxonomy {
    let mut t = Taxonomy::default();
    let enum_header = format!("enum {kind} ");
    let enum_header_brace = format!("enum {kind} {{");
    let all_header = format!("ALL: [{kind};");
    let use_prefix = format!("{kind}::");
    let mut in_enum = false;
    let mut in_all = false;
    for line in &lib.lines {
        let code = line.code();
        let trimmed = code.trim();
        if trimmed.contains(&enum_header_brace) || trimmed.ends_with(enum_header.trim_end()) {
            in_enum = true;
            continue;
        }
        if in_enum {
            if trimmed.starts_with('}') {
                in_enum = false;
            } else if let Some(variant) = trimmed.strip_suffix(',') {
                let variant = variant.trim();
                if !variant.is_empty()
                    && variant
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_uppercase())
                    && variant.chars().all(|c| c.is_ascii_alphanumeric())
                {
                    t.variants.insert(variant.to_string(), line.number);
                }
            }
            continue;
        }
        if trimmed.contains(&all_header) {
            in_all = true;
        }
        if in_all {
            for (at, _) in code.match_indices(&use_prefix) {
                let rest = &code[at + use_prefix.len()..];
                let ident: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric())
                    .collect();
                if !ident.is_empty() {
                    t.in_all.insert(ident);
                }
            }
            if trimmed.ends_with("];") {
                in_all = false;
            }
            continue;
        }
        // name() match arms: `Kind::Variant => "snake_name",`
        if let Some(at) = code.find(&use_prefix) {
            if let Some(arrow) = code.find("=>") {
                let ident: String = code[at + use_prefix.len()..]
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric())
                    .collect();
                let after = &code[arrow + 2..];
                if let Some(q1) = after.find('"') {
                    if let Some(q2) = after[q1 + 1..].find('"') {
                        let name = &after[q1 + 1..q1 + 1 + q2];
                        if !ident.is_empty() {
                            t.names.insert(ident, (name.to_string(), line.number));
                        }
                    }
                }
            }
        }
    }
    t
}

/// `metrics-registered`: every `Counter::X` / `Gauge::X` the workspace
/// records must be a declared variant that is listed in the `ALL` array,
/// has a stable snake_case name, and whose name appears in the golden
/// schema test of `crates/obs/src/collect.rs`.
///
/// The obs snapshot is schema-stable by contract (downstream tooling keys
/// on it); an unregistered metric would silently vanish from snapshots or
/// shift the dense index arrays.
pub fn metrics_registered(ws: &Workspace) -> Vec<Diagnostic> {
    const OBS_LIB: &str = "crates/obs/src/lib.rs";
    const OBS_GOLDEN: &str = "crates/obs/src/collect.rs";
    let mut diags = Vec::new();

    let mut uses: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    for file in &ws.rust_files {
        if file.rel_path == OBS_LIB {
            continue;
        }
        for line in &file.lines {
            if line.comment_only {
                continue;
            }
            let code = line.code();
            for kind in ["Counter", "Gauge"] {
                let prefix = format!("{kind}::");
                for (at, _) in code.match_indices(&prefix) {
                    let rest = &code[at + prefix.len()..];
                    let ident: String = rest
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric())
                        .collect();
                    if ident.is_empty() || ident == "ALL" {
                        continue;
                    }
                    uses.entry((kind.to_string(), ident))
                        .or_insert_with(|| (file.rel_path.clone(), line.number));
                }
            }
        }
    }
    if uses.is_empty() {
        return diags;
    }

    let Some(lib) = ws.rust_files.iter().find(|f| f.rel_path == OBS_LIB) else {
        let ((_, ident), (file, line)) = uses.iter().next().expect("uses is non-empty");
        diags.push(Diagnostic {
            file: file.clone(),
            line: *line,
            lint: "metrics-registered".to_string(),
            message: format!(
                "metric `{ident}` recorded but {OBS_LIB} is missing — cannot resolve the taxonomy"
            ),
        });
        return diags;
    };
    let golden = ws
        .rust_files
        .iter()
        .find(|f| f.rel_path == OBS_GOLDEN)
        .map(|f| {
            f.lines
                .iter()
                .map(|l| l.text.as_str())
                .collect::<Vec<_>>()
                .join("\n")
        })
        .unwrap_or_default();

    for kind in ["Counter", "Gauge"] {
        let tax = parse_taxonomy(lib, kind);
        // Every recorded variant must be declared.
        for ((k, ident), (file, line)) in &uses {
            if k == kind && !tax.variants.contains_key(ident) {
                diags.push(Diagnostic {
                    file: file.clone(),
                    line: *line,
                    lint: "metrics-registered".to_string(),
                    message: format!(
                        "`{kind}::{ident}` is not a declared {kind} variant in {OBS_LIB}"
                    ),
                });
            }
        }
        // Every declared variant must be fully registered.
        for (variant, decl_line) in &tax.variants {
            if !tax.in_all.contains(variant) {
                diags.push(Diagnostic {
                    file: OBS_LIB.to_string(),
                    line: *decl_line,
                    lint: "metrics-registered".to_string(),
                    message: format!("{kind}::{variant} is missing from {kind}::ALL"),
                });
            }
            match tax.names.get(variant) {
                None => diags.push(Diagnostic {
                    file: OBS_LIB.to_string(),
                    line: *decl_line,
                    lint: "metrics-registered".to_string(),
                    message: format!("{kind}::{variant} has no `name()` match arm"),
                }),
                Some((name, arm_line)) => {
                    if !golden.contains(&format!("\"{name}\"")) {
                        diags.push(Diagnostic {
                            file: OBS_LIB.to_string(),
                            line: *arm_line,
                            lint: "metrics-registered".to_string(),
                            message: format!(
                                "metric key \"{name}\" is absent from the golden schema test in \
                                 {OBS_GOLDEN} — register it in the expected snapshot"
                            ),
                        });
                    }
                }
            }
        }
    }
    diags
}

/// Directories where phase spans must stay balanced: the join drivers and
/// the query service — the two places whose spans feed the Chrome trace
/// and the Prometheus phase series.
const SPAN_PAIRED_DIRS: [&str; 2] = ["crates/core/src/", "crates/serve/src/"];

/// A `?` acting as the try operator (as opposed to `{x:?}` debug formats
/// or a question mark inside a string literal): previous char closes an
/// expression, next non-space char ends one.
fn has_try_operator(code: &str) -> bool {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'?' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1] as char;
        if !(prev == ')' || prev == ']' || prev == '}' || prev.is_ascii_alphanumeric() || prev == '_')
        {
            continue;
        }
        let next = code[i + 1..].trim_start().chars().next();
        if matches!(next, None | Some(';' | '.' | ')' | ',' | '}')) {
            return true;
        }
    }
    false
}

/// `span-paired`: in the span-bearing directories, every manual
/// `.enter_phase(` must be closed by an `.exit_phase(` in the same file,
/// with no early exit (`return` or `?`) while a span is open.
///
/// An unexited span skews `usj_phase_ns_total`, leaves its Chrome trace
/// event unclosed, and (under the tuple recorders) desynchronises the
/// span stack for every later phase. The RAII [`usj_obs::PhaseGuard`]
/// closes on every path — code with nontrivial control flow should use it
/// instead of the raw pair.
pub fn span_paired(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in files {
        if !SPAN_PAIRED_DIRS.iter().any(|d| file.rel_path.starts_with(d)) {
            continue;
        }
        // Line numbers of enter_phase calls not yet matched by an exit.
        let mut open: Vec<usize> = Vec::new();
        for line in &file.lines {
            if line.comment_only || line.in_test {
                continue;
            }
            let code = line.code();
            if !open.is_empty()
                && (code.contains("return") || has_try_operator(code))
                && !code.contains(".exit_phase(")
            {
                diags.push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: line.number,
                    lint: "span-paired".to_string(),
                    message: format!(
                        "early exit while the phase span opened on line {} is still open — \
                         the span would leak; close it first or use `usj_obs::PhaseGuard`",
                        open[open.len() - 1]
                    ),
                });
            }
            for _ in code.match_indices(".enter_phase(") {
                open.push(line.number);
            }
            for _ in code.match_indices(".exit_phase(") {
                if open.pop().is_none() {
                    diags.push(Diagnostic {
                        file: file.rel_path.clone(),
                        line: line.number,
                        lint: "span-paired".to_string(),
                        message: "`.exit_phase(` without a matching `.enter_phase(` earlier \
                                  in this file"
                            .to_string(),
                    });
                }
            }
        }
        for opened_at in open {
            diags.push(Diagnostic {
                file: file.rel_path.clone(),
                line: opened_at,
                lint: "span-paired".to_string(),
                message: "`.enter_phase(` never matched by an `.exit_phase(` in this file — \
                          the span leaks; pair it or use `usj_obs::PhaseGuard`"
                    .to_string(),
            });
        }
    }
    diags
}

/// External crates the workspace may depend on. Everything else must be a
/// path-internal `usj-*` crate or an explicit tidy.allow exception — the
/// build environment cannot reach crates.io, so an unvetted dependency is
/// a broken build, not just a policy question.
const ALLOWED_EXTERNAL_DEPS: [&str; 5] = ["rand", "proptest", "criterion", "serde", "serde_json"];

/// `dep-allowlist`: scan every manifest's dependency sections.
pub fn dep_allowlist(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for manifest in &ws.manifests {
        let mut in_dep_section = false;
        for (i, raw) in manifest.text.lines().enumerate() {
            let line = raw.trim();
            if line.starts_with('[') {
                in_dep_section = line.ends_with("dependencies]");
                continue;
            }
            if !in_dep_section || line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some(eq) = line.find('=') else { continue };
            let name = line[..eq].trim().trim_matches('"');
            let name = name.strip_suffix(".workspace").unwrap_or(name);
            let value = &line[eq + 1..];
            let internal = name.starts_with("usj-")
                || name == "uncertain-join"
                || value.contains("path =")
                || value.contains("path=");
            if !internal && !ALLOWED_EXTERNAL_DEPS.contains(&name) {
                diags.push(Diagnostic {
                    file: manifest.rel_path.clone(),
                    line: i + 1,
                    lint: "dep-allowlist".to_string(),
                    message: format!(
                        "external dependency `{name}` is not in the allowed set \
                         ({}) — the build environment is offline; vendor, stub, or allowlist it",
                        ALLOWED_EXTERNAL_DEPS.join(", ")
                    ),
                });
            }
        }
    }
    diags
}

/// `doc-drift`: the docs the next session navigates by must track the
/// code. Two checks:
///
/// * every crate directory under `crates/` is mentioned in `DESIGN.md`
///   (as `crates/<name>` or `usj-<name>`);
/// * `CHANGES.md` carries one `- PR <n>:` line per PR, numbered
///   consecutively from 1.
pub fn doc_drift(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if let Some(design) = &ws.design_md {
        for name in &ws.crate_dirs {
            if !design.contains(&format!("crates/{name}"))
                && !design.contains(&format!("usj-{name}"))
            {
                diags.push(Diagnostic {
                    file: "DESIGN.md".to_string(),
                    line: 1,
                    lint: "doc-drift".to_string(),
                    message: format!(
                        "crate `crates/{name}` is absent from DESIGN.md — add it to the \
                         system inventory"
                    ),
                });
            }
        }
    }
    if let Some(changes) = &ws.changes_md {
        let mut expected = 1u64;
        for (i, raw) in changes.lines().enumerate() {
            let Some(rest) = raw.strip_prefix("- PR ") else {
                continue;
            };
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            let tail = &rest[digits.len()..];
            let parsed: Option<u64> = digits.parse().ok();
            match parsed {
                Some(n) if tail.starts_with(':') => {
                    if n != expected {
                        diags.push(Diagnostic {
                            file: "CHANGES.md".to_string(),
                            line: i + 1,
                            lint: "doc-drift".to_string(),
                            message: format!(
                                "PR lines must be consecutive: expected `- PR {expected}:`, \
                                 found `- PR {n}:`"
                            ),
                        });
                    }
                    expected = n + 1;
                }
                _ => diags.push(Diagnostic {
                    file: "CHANGES.md".to_string(),
                    line: i + 1,
                    lint: "doc-drift".to_string(),
                    message: "malformed PR line — expected `- PR <n>: <summary>`".to_string(),
                }),
            }
        }
    }
    diags
}
