//! `usj-tidy` — workspace static-analysis pass (rustc-`tidy` style).
//!
//! The join's correctness rests on invariants the type system cannot see:
//! probabilities stay in `[0, 1]`, funnel counters are thread-count
//! invariant, the sharded driver's atomics keep output deterministic, and
//! the obs snapshot schema stays stable for downstream tooling. This crate
//! machine-checks the *project policies* that protect those invariants
//! across refactors:
//!
//! | lint | enforces |
//! |------|----------|
//! | `no-unwrap` | no `unwrap()`/`expect()`/`unwrap_unchecked()`/`panic!` in hot-path modules |
//! | `ordering-comment` | every atomic `Ordering::…` carries an `// ordering:` justification |
//! | `unsafe-safety` | every `unsafe` block carries a `// safety:` justification (declarations exempt) |
//! | `metrics-registered` | every recorded `Counter`/`Gauge` is declared, in `ALL`, named, and pinned by the golden schema test |
//! | `dep-allowlist` | no external dependencies outside the vetted set |
//! | `doc-drift` | `DESIGN.md` inventories every crate; `CHANGES.md` has one consecutive `- PR n:` line per PR |
//! | `socket-timeout` | no blocking socket read in `crates/serve/src/` without a prior `set_read_timeout` |
//! | `durable-write` | no raw `File::create`/`fs::write` in `crates/{core,serve,cli}/src/` outside the `durable_atomic_write` helpers |
//! | `span-paired` | every manual `enter_phase` in `crates/{core,serve}/src/` is exited in-file, with no early `return`/`?` while open (RAII `PhaseGuard` is exempt) |
//! | `budget-loop` | every loop in a probe/search fn (budget-scoped files) consults `ProbeBudget`/deadline/cancel in its body |
//! | `failpoint-coverage` | every `catch_unwind` carries a named failpoint in-extent; fault-plan names resolve; every failpoint is test-exercised |
//! | `lock-discipline` | no lock guard stays live across `catch_unwind`, a failpoint, blocking I/O, or `sleep` |
//!
//! Since PR 8 the engine is token-aware: a string/char/raw-string/comment
//! tokenizer ([`tokenizer`]) feeds a brace-tree of fn/impl/mod/test
//! extents ([`extent`]) and a workspace failpoint symbol table
//! ([`symbols`]); the line lints consume masked per-line views
//! ([`source`]) derived from the same stream, so neither granularity can
//! be fooled by literals, comments, or multi-line constructs.
//!
//! Exceptions live in `tidy.allow` at the workspace root — line-granular,
//! content-matched, and reason-bearing (see [`allow`]). Unused entries are
//! themselves diagnostics, so the allowlist can only shrink.
//!
//! Run as `cargo run -p usj-tidy`; exits non-zero with `file:line: lint:
//! message` diagnostics on any violation (`--emit=json` for the
//! machine-readable stream, see [`emit`]). Like `usj-obs`, this crate is
//! **std-only by design** — it must build where crates.io is unreachable.

#![warn(missing_docs)]

pub mod allow;
pub mod emit;
pub mod extent;
pub mod lints;
pub mod source;
pub mod symbols;
pub mod tokenizer;

use std::path::{Path, PathBuf};

use allow::AllowList;
use source::SourceFile;

/// Every lint name, for allowlist validation and `--help` output.
pub const LINT_NAMES: [&str; 12] = [
    "no-unwrap",
    "ordering-comment",
    "unsafe-safety",
    "metrics-registered",
    "dep-allowlist",
    "doc-drift",
    "socket-timeout",
    "durable-write",
    "span-paired",
    "budget-loop",
    "failpoint-coverage",
    "lock-discipline",
];

/// Directory names never walked: build artifacts, VCS state, the offline
/// staging area, experiment outputs, and lint-test fixture trees (which
/// contain violations *on purpose*).
const SKIP_DIRS: [&str; 5] = ["target", ".git", ".buildcheck", "results", "fixtures"];

/// One tidy finding, printed as `file:line: lint: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Lint name (one of [`LINT_NAMES`], or `allow-syntax`/`unused-allow`
    /// for problems in `tidy.allow` itself).
    pub lint: String,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// A non-Rust file tidy inspects verbatim (manifests).
#[derive(Debug)]
pub struct RawFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Entire file contents.
    pub text: String,
}

/// Everything the lints look at, loaded in one walk.
#[derive(Debug)]
pub struct Workspace {
    /// All `.rs` files (classified), sorted by path.
    pub rust_files: Vec<SourceFile>,
    /// All `Cargo.toml` manifests, sorted by path.
    pub manifests: Vec<RawFile>,
    /// Names of directories under `crates/` that contain a `Cargo.toml`.
    pub crate_dirs: Vec<String>,
    /// `DESIGN.md` contents, if present.
    pub design_md: Option<String>,
    /// `CHANGES.md` contents, if present.
    pub changes_md: Option<String>,
}

impl Workspace {
    /// Walks `root`, loading every file the lints need. IO errors on
    /// individual files are skipped (a vanishing file is the build's
    /// problem, not tidy's).
    pub fn load(root: &Path) -> Workspace {
        let mut rust_files = Vec::new();
        let mut manifests = Vec::new();
        walk(root, root, &mut rust_files, &mut manifests);
        rust_files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        manifests.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));

        let mut crate_dirs = Vec::new();
        if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir() && path.join("Cargo.toml").is_file() {
                    if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                        crate_dirs.push(name.to_string());
                    }
                }
            }
        }
        crate_dirs.sort();

        Workspace {
            rust_files,
            manifests,
            crate_dirs,
            design_md: std::fs::read_to_string(root.join("DESIGN.md")).ok(),
            changes_md: std::fs::read_to_string(root.join("CHANGES.md")).ok(),
        }
    }
}

fn walk(root: &Path, dir: &Path, rust: &mut Vec<SourceFile>, manifests: &mut Vec<RawFile>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                walk(root, &path, rust, manifests);
            }
            continue;
        }
        let is_rust = name.ends_with(".rs");
        let is_manifest = name == "Cargo.toml";
        if !is_rust && !is_manifest {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = rel_path(root, &path);
        if is_rust {
            rust.push(SourceFile::parse(&rel, &text));
        } else {
            manifests.push(RawFile {
                rel_path: rel,
                text,
            });
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Runs every lint over the workspace at `root`, filters through
/// `tidy.allow`, and returns the surviving diagnostics sorted by
/// `(file, line, lint)`. Empty result = clean workspace.
pub fn run_tidy(root: &Path) -> Vec<Diagnostic> {
    let ws = Workspace::load(root);
    let mut allow = AllowList::load(root);

    let mut raw: Vec<Diagnostic> = Vec::new();
    raw.extend(lints::no_unwrap(&ws.rust_files));
    raw.extend(lints::ordering_comment(&ws.rust_files));
    raw.extend(lints::unsafe_safety(&ws.rust_files));
    raw.extend(lints::metrics_registered(&ws));
    raw.extend(lints::dep_allowlist(&ws));
    raw.extend(lints::doc_drift(&ws));
    raw.extend(lints::socket_timeout(&ws.rust_files));
    raw.extend(lints::durable_write(&ws.rust_files));
    raw.extend(lints::span_paired(&ws.rust_files));
    raw.extend(lints::budget_loop(&ws.rust_files));
    raw.extend(lints::failpoint_coverage(&ws));
    raw.extend(lints::lock_discipline(&ws.rust_files));

    let mut diags: Vec<Diagnostic> = Vec::new();
    for diag in raw {
        let line_text = source_line(&ws, &diag);
        if allow.allows(&diag.lint, &diag.file, line_text) {
            continue;
        }
        diags.push(diag);
    }
    diags.extend(allow.parse_diags.iter().cloned());
    diags.extend(allow.unused_entries(&ws));
    diags.sort_by(|a, b| {
        (&a.file, a.line, &a.lint, &a.message).cmp(&(&b.file, b.line, &b.lint, &b.message))
    });
    // One diagnostic per (file, line, lint): a line tripping several
    // patterns of the same lint reads as noise, not signal. Sorting
    // first makes the survivor (smallest message) deterministic.
    diags.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.lint == b.lint);
    diags
}

/// The text of the line a diagnostic points at (for allowlist matching).
fn source_line<'a>(ws: &'a Workspace, diag: &Diagnostic) -> &'a str {
    if let Some(f) = ws.rust_files.iter().find(|f| f.rel_path == diag.file) {
        if let Some(line) = f.lines.get(diag.line.wrapping_sub(1)) {
            return &line.text;
        }
    }
    if let Some(m) = ws.manifests.iter().find(|m| m.rel_path == diag.file) {
        if let Some(line) = m.text.lines().nth(diag.line.wrapping_sub(1)) {
            return line;
        }
    }
    ""
}
