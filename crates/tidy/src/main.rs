//! Thin CLI wrapper: `cargo run -p usj-tidy [-- --root PATH] [--emit=json]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[derive(PartialEq)]
enum Emit {
    Text,
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut emit = Emit::Text;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => match iter.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("usj-tidy: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--emit=json" => emit = Emit::Json,
            "--emit=text" => emit = Emit::Text,
            "--help" | "-h" => {
                println!(
                    "usj-tidy — workspace static-analysis pass\n\n\
                     USAGE: usj-tidy [--root PATH] [--emit=text|json]\n\n\
                     Lints: {}\n\
                     Exceptions: tidy.allow at the workspace root \
                     (`<lint> <path> -- <substring> -- <reason>`)\n\
                     --emit=json writes a schema-pinned diagnostic document \
                     ({}) to stdout for CI artifacts.",
                    usj_tidy::LINT_NAMES.join(", "),
                    usj_tidy::emit::SCHEMA
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("usj-tidy: unknown argument {other:?} (see --help)");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root.or_else(find_root) else {
        eprintln!("usj-tidy: cannot find a workspace root (Cargo.toml + crates/) above the cwd");
        return ExitCode::from(2);
    };

    let diags = usj_tidy::run_tidy(&root);
    if emit == Emit::Json {
        println!("{}", usj_tidy::emit::to_json(&diags));
        return if diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if diags.is_empty() {
        println!(
            "tidy: workspace clean ({} lints)",
            usj_tidy::LINT_NAMES.len()
        );
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        eprintln!("{d}");
    }
    eprintln!("tidy: {} violation(s)", diags.len());
    ExitCode::FAILURE
}
