//! Token-classified view of one Rust source file.
//!
//! A [`SourceFile`] owns the raw text, its token stream
//! ([`crate::tokenizer`]), the extent tree ([`crate::extent`]), and a
//! per-line projection of both. The per-line view is what the line lints
//! consume; it is derived from the tokens, so its notion of "code" is
//! string- and comment-accurate:
//!
//! * [`Line::code`] is the line's slice of the **masked code view** —
//!   comments and string/char interiors blanked to spaces — so a
//!   `.unwrap()` inside a message string or a doc comment can never
//!   match a code pattern;
//! * [`Line::code_with_strings`] keeps string contents (for the lints
//!   that read literals, e.g. metric snake_names);
//! * [`Line::in_test`] is true when any code token on the line sits in a
//!   `#[cfg(test)]`/`#[test]` extent — multi-line test items and nested
//!   helpers classify correctly because the extent tree does.

use crate::extent::{self, Extents};
use crate::tokenizer::{self, Token};

/// One classified source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The raw line text (no trailing newline).
    pub text: String,
    /// Masked code for this line (comments and literal interiors blanked).
    code: String,
    /// Comment-masked code with string contents kept.
    code_str: String,
    /// `true` when the line carries no code tokens at all (blank lines
    /// and pure comment lines) — prose, never lintable code.
    pub comment_only: bool,
    /// `true` when the raw line is entirely whitespace.
    pub blank: bool,
    /// `true` when a code token on this line sits inside test code.
    pub in_test: bool,
}

impl Line {
    /// The code portion of the line: comments and string/char interiors
    /// replaced by spaces (delimiting quotes kept). Same byte length as
    /// [`Line::text`].
    pub fn code(&self) -> &str {
        &self.code
    }

    /// Like [`Line::code`] but with string-literal contents visible
    /// (comments still masked).
    pub fn code_with_strings(&self) -> &str {
        &self.code_str
    }
}

/// A source file: raw text, tokens, extents, and classified lines.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Entire file contents.
    pub text: String,
    /// The token stream (spans tile `text` byte-exactly).
    pub toks: Vec<Token>,
    /// The extent tree over `toks`.
    pub extents: Extents,
    /// All lines, in order.
    pub lines: Vec<Line>,
    /// `true` when the path marks the whole file as test code
    /// (`tests/` integration directories, `benches/`).
    pub is_test_path: bool,
}

impl SourceFile {
    /// Tokenizes and classifies `text` (the entire file).
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let toks = tokenizer::tokenize(text);
        let extents = extent::build(text, &toks);
        let masked = tokenizer::code_mask(text, &toks);
        let masked_str = tokenizer::code_mask_keep_strings(text, &toks);
        let is_test_path = rel_path.contains("/tests/")
            || rel_path.starts_with("tests/")
            || rel_path.contains("/benches/");

        // Line start offsets (byte positions just after each '\n').
        let mut starts: Vec<usize> = vec![0];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        // Match `str::lines`: a trailing newline does not open a final
        // empty line.
        if starts.len() > 1 && *starts.last().expect("non-empty") == text.len() {
            starts.pop();
        }
        if text.is_empty() {
            starts.clear();
        }
        let nlines = starts.len();

        // A line is test code when any non-trivia token on it is.
        let mut in_test = vec![is_test_path; nlines];
        if !is_test_path {
            for (ti, t) in toks.iter().enumerate() {
                if t.is_trivia() || !extents.in_test(ti) {
                    continue;
                }
                let span_lines = text[t.start..t.end].bytes().filter(|&b| b == b'\n').count();
                for l in t.line..=(t.line + span_lines) {
                    if let Some(slot) = in_test.get_mut(l - 1) {
                        *slot = true;
                    }
                }
            }
        }

        let mut lines = Vec::with_capacity(nlines);
        for (i, &start) in starts.iter().enumerate() {
            let end = starts
                .get(i + 1)
                .map(|&s| s - 1)
                .unwrap_or(text.len());
            let raw = text[start..end].strip_suffix('\r').unwrap_or(&text[start..end]);
            let code = &masked[start..start + raw.len()];
            let code_str = &masked_str[start..start + raw.len()];
            lines.push(Line {
                number: i + 1,
                text: raw.to_string(),
                code: code.to_string(),
                code_str: code_str.to_string(),
                comment_only: code.trim().is_empty(),
                blank: raw.trim().is_empty(),
                in_test: in_test[i],
            });
        }
        SourceFile {
            rel_path: rel_path.to_string(),
            text: text.to_string(),
            toks,
            extents,
            lines,
            is_test_path,
        }
    }

    /// Indices of the non-trivia tokens, in order — the stream the
    /// token-sequence lints match against.
    pub fn meaningful(&self) -> Vec<usize> {
        (0..self.toks.len())
            .filter(|&i| !self.toks[i].is_trivia())
            .collect()
    }

    /// The text of token `ti`.
    pub fn tok_text(&self, ti: usize) -> &str {
        self.toks[ti].text(&self.text)
    }

    /// `true` when token `ti` is test code (by extent or by path).
    pub fn tok_in_test(&self, ti: usize) -> bool {
        self.is_test_path || self.extents.in_test(ti)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_comments_and_test_modules() {
        let text = "\
use std::fmt; // trailing
/// doc comment with .unwrap() inside
fn hot() {
    let x = compute();
}
#[cfg(test)]
mod tests {
    fn helper() {
        value.unwrap();
    }
}
fn after() {}
";
        let f = SourceFile::parse("x.rs", text);
        assert!(!f.lines[0].comment_only);
        assert_eq!(f.lines[0].code().trim(), "use std::fmt;");
        assert!(f.lines[1].comment_only);
        assert!(!f.lines[1].code().contains(".unwrap()"));
        assert!(!f.lines[3].in_test);
        assert!(f.lines[8].in_test, "{:?}", f.lines[8]);
        assert!(f.lines[8].text.contains("unwrap"));
        // After the module closes, classification resets.
        assert!(!f.lines[11].in_test, "{:?}", f.lines[11]);
    }

    #[test]
    fn cfg_test_with_intervening_attributes() {
        let text = "\
#[cfg(test)]
#[allow(dead_code)]
mod tests {
    fn f() { g(); }
}
fn h() {}
";
        let f = SourceFile::parse("x.rs", text);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn string_contents_never_reach_code() {
        let text = "let s = \"a // b .unwrap() Ordering::SeqCst\"; call();\n";
        let f = SourceFile::parse("x.rs", text);
        let code = f.lines[0].code();
        assert!(!code.contains(".unwrap()"));
        assert!(!code.contains("Ordering::"));
        assert!(code.contains("call();"));
        // ... but the string-keeping view still sees the literal.
        assert!(f.lines[0].code_with_strings().contains("Ordering::SeqCst"));
    }

    #[test]
    fn multi_line_strings_mask_every_covered_line() {
        let text = "let s = \"one\npanic!(two)\nthree\"; done();\n";
        let f = SourceFile::parse("x.rs", text);
        assert!(!f.lines[1].code().contains("panic!"));
        assert!(f.lines[1].comment_only, "interior line carries no code");
        assert!(f.lines[2].code().contains("done();"));
    }

    #[test]
    fn integration_test_paths_are_test_code() {
        let f = SourceFile::parse("crates/core/tests/ft.rs", "fn probe() { x.unwrap(); }\n");
        assert!(f.lines[0].in_test);
        assert!(f.is_test_path);
    }
}
