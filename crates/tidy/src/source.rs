//! Line-classified view of one Rust source file.
//!
//! The lints are textual (rustc-`tidy` style, no syn/proc-macro), so the
//! classifier only needs to answer two questions per line: *is this line
//! comment-only* (doc or plain — lints never fire on prose) and *is it
//! inside a `#[cfg(test)]` module* (test code may unwrap freely). Both are
//! answered with a single forward pass that tracks brace depth from the
//! `#[cfg(test)]` attribute to the closing brace of the module it gates.

/// One classified source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The raw line text (no trailing newline).
    pub text: String,
    /// `true` when the trimmed line is a `//`/`///`/`//!` comment (or
    /// blank) — prose, never lintable code.
    pub comment_only: bool,
    /// `true` when the line sits inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
}

impl Line {
    /// The code portion of the line: everything before a trailing `//`
    /// comment. This is intentionally naive about `//` inside string
    /// literals; project source keeps URLs and slashes out of hot-path
    /// string literals, and a false *skip* only makes the lint lenient on
    /// that line, never wrong on others.
    pub fn code(&self) -> &str {
        if self.comment_only {
            return "";
        }
        match self.text.find("//") {
            Some(i) => &self.text[..i],
            None => &self.text,
        }
    }
}

/// A source file split into classified [`Line`]s.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// All lines, in order.
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Classifies `text` (the entire file) into lines.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let mut lines = Vec::new();
        // Depth tracking for `#[cfg(test)]`: once the attribute is seen,
        // the next item that opens a brace starts a gated region that ends
        // when the depth returns to its pre-item value.
        let mut depth: i64 = 0;
        let mut pending_cfg_test = false;
        let mut test_exit_depth: Option<i64> = None;

        for (i, raw) in text.lines().enumerate() {
            let trimmed = raw.trim_start();
            let comment_only =
                trimmed.is_empty() || trimmed.starts_with("//") || trimmed.starts_with("#!");
            let in_test = test_exit_depth.is_some();

            if !comment_only {
                if trimmed.starts_with("#[cfg(test)]") {
                    pending_cfg_test = true;
                } else if pending_cfg_test && !trimmed.starts_with("#[") {
                    // The first non-attribute item after #[cfg(test)] is
                    // the gated one; it becomes a test region when it
                    // opens a brace on this line (mod/fn/impl header).
                    if raw.contains('{') && test_exit_depth.is_none() {
                        test_exit_depth = Some(depth);
                    }
                    pending_cfg_test = false;
                }
                for ch in raw.chars() {
                    match ch {
                        '{' => depth += 1,
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if let Some(exit) = test_exit_depth {
                    if depth <= exit {
                        test_exit_depth = None;
                    }
                }
            }

            lines.push(Line {
                number: i + 1,
                text: raw.to_string(),
                comment_only,
                in_test,
            });
        }
        SourceFile {
            rel_path: rel_path.to_string(),
            lines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_comments_and_test_modules() {
        let text = "\
use std::fmt; // trailing
/// doc comment with .unwrap() inside
fn hot() {
    let x = compute();
}
#[cfg(test)]
mod tests {
    fn helper() {
        value.unwrap();
    }
}
fn after() {}
";
        let f = SourceFile::parse("x.rs", text);
        assert!(!f.lines[0].comment_only);
        assert_eq!(f.lines[0].code(), "use std::fmt; ");
        assert!(f.lines[1].comment_only);
        assert_eq!(f.lines[1].code(), "");
        assert!(!f.lines[3].in_test);
        // Lines inside mod tests are gated; the attribute line itself is
        // not (nothing lintable sits on it).
        assert!(f.lines[8].in_test, "{:?}", f.lines[8]);
        assert!(f.lines[8].text.contains("unwrap"));
        // After the module closes, classification resets.
        assert!(!f.lines[11].in_test, "{:?}", f.lines[11]);
    }

    #[test]
    fn cfg_test_with_intervening_attributes() {
        let text = "\
#[cfg(test)]
#[allow(dead_code)]
mod tests {
    fn f() { g(); }
}
fn h() {}
";
        let f = SourceFile::parse("x.rs", text);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }
}
