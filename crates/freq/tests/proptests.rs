//! Property tests for frequency-distance filtering.

use proptest::prelude::*;
use usj_freq::{
    expected_distances, expected_nd_char, expected_nd_naive, lemma6_lower_bound,
    theorem3_upper_bound, CharProfile, FreqFilter, FreqProfile,
};
use usj_model::{Position, UncertainString};

fn arb_position(sigma: u8, max_alts: usize) -> impl Strategy<Value = Position> {
    prop::collection::vec((0..sigma, 1u32..=100), 1..=max_alts).prop_map(|raw| {
        let mut seen = std::collections::BTreeMap::new();
        for (s, w) in raw {
            *seen.entry(s).or_insert(0u32) += w;
        }
        let total: u32 = seen.values().sum();
        let alts: Vec<(u8, f64)> = seen
            .into_iter()
            .map(|(s, w)| (s, w as f64 / total as f64))
            .collect();
        Position::uncertain(0, alts).unwrap()
    })
}

fn arb_string(sigma: u8, len: std::ops::Range<usize>) -> impl Strategy<Value = UncertainString> {
    prop::collection::vec(arb_position(sigma, 2), len).prop_map(UncertainString::new)
}

fn arb_char_profile() -> impl Strategy<Value = CharProfile> {
    (0u32..4, prop::collection::vec(1u32..100, 0..5)).prop_map(|(certain, weights)| {
        let probs: Vec<f64> = weights.iter().map(|&w| w as f64 / 101.0).collect();
        CharProfile::new(certain, &probs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Lemma 6 lower-bounds the frequency distance of every world pair.
    #[test]
    fn lemma6_is_a_world_lower_bound(
        r in arb_string(3, 2..6),
        s in arb_string(3, 2..6),
    ) {
        let bound = lemma6_lower_bound(&FreqProfile::new(&r, 3), &FreqProfile::new(&s, 3));
        for rw in r.worlds() {
            for sw in s.worlds() {
                let fd = usj_editdist::frequency_distance(&rw.instance, &sw.instance, 3);
                prop_assert!(bound <= fd, "bound={bound} fd={fd}");
            }
        }
    }

    /// E[pD]/E[nD] agree with joint-world enumeration.
    #[test]
    fn expectations_match_worlds(
        r in arb_string(3, 2..6),
        s in arb_string(3, 2..6),
    ) {
        let (e_pd, e_nd) = expected_distances(&FreqProfile::new(&r, 3), &FreqProfile::new(&s, 3));
        let (mut b_pd, mut b_nd) = (0.0, 0.0);
        for rw in r.worlds() {
            for sw in s.worlds() {
                let fr = usj_editdist::FreqVector::new(&rw.instance, 3);
                let fs = usj_editdist::FreqVector::new(&sw.instance, 3);
                let p = rw.prob * sw.prob;
                for i in 0..3u8 {
                    let d = fr.count(i) as f64 - fs.count(i) as f64;
                    if d > 0.0 { b_pd += p * d } else { b_nd -= p * d }
                }
            }
        }
        prop_assert!((e_pd - b_pd).abs() < 1e-9, "E[pD] {e_pd} vs {b_pd}");
        prop_assert!((e_nd - b_nd).abs() < 1e-9, "E[nD] {e_nd} vs {b_nd}");
    }

    /// Fast expectation equals the naive double sum.
    #[test]
    fn fast_expectation_equals_naive(a in arb_char_profile(), b in arb_char_profile()) {
        let fast = expected_nd_char(&a, &b);
        let naive = expected_nd_naive(&a, &b);
        prop_assert!((fast - naive).abs() < 1e-9, "fast={fast} naive={naive}");
    }

    /// Theorem 3's bound dominates the exact Pr(fd ≤ k) (and therefore
    /// Pr(ed ≤ k)).
    #[test]
    fn theorem3_dominates_exact(
        r in arb_string(3, 2..6),
        s in arb_string(3, 2..6),
        k in 0usize..3,
    ) {
        let (rp, sp) = (FreqProfile::new(&r, 3), FreqProfile::new(&s, 3));
        let (e_pd, e_nd) = expected_distances(&rp, &sp);
        let bound = theorem3_upper_bound(r.len(), s.len(), e_pd, e_nd, k);
        let mut exact_fd = 0.0;
        for rw in r.worlds() {
            for sw in s.worlds() {
                if usj_editdist::frequency_distance(&rw.instance, &sw.instance, 3) as usize <= k {
                    exact_fd += rw.prob * sw.prob;
                }
            }
        }
        prop_assert!(bound >= exact_fd - 1e-9, "bound={bound} exact={exact_fd}");
    }

    /// End-to-end soundness of the filter: no false negatives against the
    /// exact edit-distance probability.
    #[test]
    fn filter_is_sound(
        r in arb_string(3, 2..6),
        s in arb_string(3, 2..6),
        k in 0usize..3,
        tau_pct in 1u32..80,
    ) {
        let tau = tau_pct as f64 / 100.0;
        let filter = FreqFilter::new(k, tau, 3);
        let out = filter.evaluate_strings(&r, &s);
        if !out.candidate {
            let mut exact = 0.0;
            for rw in r.worlds() {
                for sw in s.worlds() {
                    if usj_editdist::within_k(&rw.instance, &sw.instance, k) {
                        exact += rw.prob * sw.prob;
                    }
                }
            }
            prop_assert!(exact <= tau + 1e-9, "false negative: exact={exact} tau={tau} {out:?}");
        }
    }
}
