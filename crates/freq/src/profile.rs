//! Per-character occurrence-count distributions (paper §5).
//!
//! For character `c_i` of an uncertain string `S`:
//!
//! * `f^c_i` — occurrences with probability 1 (certain positions);
//! * `f^t_i` — certain plus uncertain positions (maximum possible count);
//! * `f^u_i = f^t_i − f^c_i` — number of uncertain positions mentioning
//!   `c_i`.
//!
//! The count `f_{S,i}` is `f^c_i` plus a Poisson-binomial variable over
//! the `f^u_i` uncertain positions. [`CharProfile`] stores its pmf (the
//! paper's `S1`) and the scaled summations `S2`, `S3`, `S4`:
//!
//! ```text
//! S2[x] = Σ_{y ≥ x} S1[y]                 (upper tail)
//! S3[x] = Σ_{y ≥ x} (y − x + 1)·S1[y]     (scaled upper tail)
//! S4[x] = Σ_{y ≤ x} (x − y)·S1[y]         (scaled lower tail)
//! ```
//!
//! All four arrays take `O(f^u_i)` space and are computed in `O((f^u_i)²)`
//! time (the pmf DP dominates), exactly the preprocessing the paper
//! describes.

use usj_model::UncertainString;

/// Occurrence-count distribution of one character in one uncertain string.
#[derive(Debug, Clone, PartialEq)]
pub struct CharProfile {
    certain: u32,
    /// `S1[x] = Pr(f = certain + x)` for `x = 0..=u`.
    s1: Vec<f64>,
    s2: Vec<f64>,
    s3: Vec<f64>,
    s4: Vec<f64>,
    /// `E[f] − certain`, cached.
    mean_uncertain: f64,
}

impl CharProfile {
    /// Builds the profile from the certain count and the occurrence
    /// probabilities at uncertain positions.
    pub fn new(certain: u32, uncertain_probs: &[f64]) -> Self {
        let u = uncertain_probs.len();
        // Poisson-binomial pmf over the uncertain positions.
        let mut s1 = vec![0.0; u + 1];
        s1[0] = 1.0;
        for (i, &p) in uncertain_probs.iter().enumerate() {
            debug_assert!((0.0..=1.0).contains(&p) && p > 0.0 && p < 1.0 + 1e-12);
            for x in (0..=i + 1).rev() {
                let stay = if x <= i { s1[x] * (1.0 - p) } else { 0.0 };
                let step = if x > 0 { s1[x - 1] * p } else { 0.0 };
                s1[x] = stay + step;
            }
        }
        let mut s2 = vec![0.0; u + 1];
        let mut s3 = vec![0.0; u + 1];
        let mut s4 = vec![0.0; u + 1];
        // Suffix recurrences: S2[x] = S2[x+1] + S1[x],
        // S3[x] = S3[x+1] + S2[x] (each +1 shift adds one more copy of the
        // tail mass).
        for x in (0..=u).rev() {
            let (next2, next3) = if x < u {
                (s2[x + 1], s3[x + 1])
            } else {
                (0.0, 0.0)
            };
            s2[x] = next2 + s1[x];
            s3[x] = next3 + s2[x];
        }
        // Prefix recurrence: S4[x] = S4[x−1] + Pr(f ≤ certain + x − 1).
        let mut below = 0.0; // Σ_{y ≤ x−1} S1[y]
        for x in 1..=u {
            below += s1[x - 1];
            s4[x] = s4[x - 1] + below;
        }
        let mean_uncertain: f64 = uncertain_probs.iter().sum();
        CharProfile {
            certain,
            s1,
            s2,
            s3,
            s4,
            mean_uncertain,
        }
    }

    /// `f^c`: minimum possible occurrence count.
    #[inline]
    pub fn certain(&self) -> u32 {
        self.certain
    }

    /// `f^t`: maximum possible occurrence count.
    #[inline]
    pub fn total(&self) -> u32 {
        self.certain + self.uncertain()
    }

    /// `f^u`: number of uncertain positions mentioning the character.
    #[inline]
    pub fn uncertain(&self) -> u32 {
        (self.s1.len() - 1) as u32
    }

    /// `Pr(f = count)`.
    pub fn pmf(&self, count: u32) -> f64 {
        if count < self.certain {
            return 0.0;
        }
        let x = (count - self.certain) as usize;
        self.s1.get(x).copied().unwrap_or(0.0)
    }

    /// The paper's `S1` array: `S1[x] = Pr(f = f^c + x)`.
    pub fn s1(&self) -> &[f64] {
        &self.s1
    }

    /// The paper's `S2` array: `S2[x] = Pr(f ≥ f^c + x)`.
    pub fn s2(&self) -> &[f64] {
        &self.s2
    }

    /// The paper's `S3` array: `S3[x] = Σ_{y≥x} (y−x+1)·S1[y]`.
    pub fn s3(&self) -> &[f64] {
        &self.s3
    }

    /// The paper's `S4` array: `S4[x] = Σ_{y≤x} (x−y)·S1[y]`.
    pub fn s4(&self) -> &[f64] {
        &self.s4
    }

    /// `E[f]`.
    pub fn mean(&self) -> f64 {
        self.certain as f64 + self.mean_uncertain
    }

    /// `E[(f − x)^+]` in `O(1)` using the precomputed arrays: the
    /// expectation of how far the count exceeds `x`.
    pub fn expected_excess_over(&self, x: i64) -> f64 {
        let c = self.certain as i64;
        if x < c {
            // f ≥ certain > x always: E[f − x] = E[f] − x.
            return self.mean() - x as f64;
        }
        let d = (x - c) as usize;
        let u = self.s1.len() - 1;
        if d >= u {
            // f ≤ certain + u ≤ x: excess impossible (d = u ⇒ only y > u
            // would count, which has no mass).
            return 0.0;
        }
        // Σ_{y ≥ d+1} (y − d)·S1[y] = S3[d+1].
        self.s3[d + 1]
    }
}

/// Frequency profiles of every alphabet character for one uncertain string.
#[derive(Debug, Clone, PartialEq)]
pub struct FreqProfile {
    per_char: Vec<CharProfile>,
    len: usize,
}

impl FreqProfile {
    /// Builds profiles for all `sigma` characters of `s`.
    ///
    /// Total cost `O(σ + |s| + Σ_i (f^u_i)²)`; with uncertainty fraction θ
    /// this is the `O(σ·θ·|S|)`-ish preprocessing of the paper (§5).
    pub fn new(s: &UncertainString, sigma: usize) -> Self {
        let mut certain = vec![0u32; sigma];
        let mut uncertain: Vec<Vec<f64>> = vec![Vec::new(); sigma];
        for pos in s.positions() {
            for (sym, p) in pos.alternatives() {
                let i = sym as usize;
                assert!(i < sigma, "symbol {sym} out of range for sigma={sigma}");
                if p >= 1.0 - 1e-12 {
                    certain[i] += 1;
                } else {
                    uncertain[i].push(p);
                }
            }
        }
        let per_char = certain
            .into_iter()
            .zip(uncertain)
            .map(|(c, u)| CharProfile::new(c, &u))
            .collect();
        FreqProfile {
            per_char,
            len: s.len(),
        }
    }

    /// Alphabet size.
    pub fn sigma(&self) -> usize {
        self.per_char.len()
    }

    /// String length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for the empty string.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Profile of character `i`.
    pub fn char_profile(&self, i: usize) -> &CharProfile {
        &self.per_char[i]
    }

    /// Iterates all per-character profiles.
    pub fn char_profiles(&self) -> impl Iterator<Item = &CharProfile> {
        self.per_char.iter()
    }

    /// Total number of uncertain (character, position) entries — the
    /// quantity the paper's `O(σθ(|R|+|S|))` filter cost refers to.
    pub fn total_uncertain(&self) -> u32 {
        self.per_char.iter().map(|c| c.uncertain()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_model::Alphabet;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    #[test]
    fn deterministic_counts() {
        let p = FreqProfile::new(&dna("AACGT"), 4);
        assert_eq!(p.char_profile(0).certain(), 2); // A
        assert_eq!(p.char_profile(0).total(), 2);
        assert_eq!(p.char_profile(1).certain(), 1); // C
        assert_eq!(p.char_profile(3).total(), 1); // T
        assert_eq!(p.total_uncertain(), 0);
        assert_eq!(p.char_profile(0).mean(), 2.0);
        assert_eq!(p.char_profile(0).pmf(2), 1.0);
        assert_eq!(p.char_profile(0).pmf(1), 0.0);
    }

    #[test]
    fn uncertain_counts_and_pmf() {
        // A appears surely at position 0, with prob 0.5 at position 1.
        let p = FreqProfile::new(&dna("A{(A,0.5),(C,0.5)}G"), 4);
        let a = p.char_profile(0);
        assert_eq!(a.certain(), 1);
        assert_eq!(a.total(), 2);
        assert_eq!(a.uncertain(), 1);
        assert!((a.pmf(1) - 0.5).abs() < 1e-12);
        assert!((a.pmf(2) - 0.5).abs() < 1e-12);
        assert_eq!(a.pmf(0), 0.0);
        assert!((a.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn pmf_matches_world_enumeration() {
        let s = dna("{(A,0.3),(C,0.7)}{(A,0.6),(G,0.4)}A{(C,0.2),(T,0.8)}");
        let p = FreqProfile::new(&s, 4);
        for sym in 0..4u8 {
            // Distribution of #occurrences of sym across worlds.
            let mut hist = std::collections::HashMap::new();
            for w in s.worlds() {
                let count = w.instance.iter().filter(|&&c| c == sym).count() as u32;
                *hist.entry(count).or_insert(0.0) += w.prob;
            }
            for count in 0..=4u32 {
                let expect = hist.get(&count).copied().unwrap_or(0.0);
                let got = p.char_profile(sym as usize).pmf(count);
                assert!(
                    (got - expect).abs() < 1e-9,
                    "sym={sym} count={count}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn scaled_arrays_match_definitions() {
        let profile = CharProfile::new(2, &[0.3, 0.6, 0.9]);
        let u = 3usize;
        let s1 = profile.s1();
        for x in 0..=u {
            let s2: f64 = (x..=u).map(|y| s1[y]).sum();
            let s3: f64 = (x..=u).map(|y| (y - x + 1) as f64 * s1[y]).sum();
            let s4: f64 = (0..=x).map(|y| (x - y) as f64 * s1[y]).sum();
            assert!((profile.s2()[x] - s2).abs() < 1e-12, "S2[{x}]");
            assert!((profile.s3()[x] - s3).abs() < 1e-12, "S3[{x}]");
            assert!((profile.s4()[x] - s4).abs() < 1e-12, "S4[{x}]");
        }
        // S2[0] is the full mass.
        assert!((profile.s2()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_excess_matches_brute_force() {
        let profile = CharProfile::new(1, &[0.25, 0.5, 0.75]);
        for x in -2i64..8 {
            let brute: f64 = (0..=3u32)
                .map(|up| {
                    let count = (1 + up) as i64;
                    profile.pmf(1 + up) * ((count - x).max(0)) as f64
                })
                .sum();
            let got = profile.expected_excess_over(x);
            assert!((got - brute).abs() < 1e-12, "x={x}: {got} vs {brute}");
        }
    }

    #[test]
    fn mean_is_sum_of_probs() {
        let profile = CharProfile::new(3, &[0.5, 0.5]);
        assert!((profile.mean() - 4.0).abs() < 1e-12);
    }
}
