//! The combined frequency-distance filter (paper §5).

use usj_model::UncertainString;

use crate::expectation::expected_distances;
use crate::profile::FreqProfile;
use crate::{lemma6_lower_bound, theorem3_upper_bound};

/// Outcome of the frequency-distance filter on a candidate pair.
#[derive(Debug, Clone, PartialEq)]
pub struct FreqOutcome {
    /// Lemma 6 lower bound on `fd(R, S)` over all worlds.
    pub fd_lower: u32,
    /// `E[pD]`, the expected positive frequency distance.
    pub e_pd: f64,
    /// `E[nD]`, the expected negative frequency distance.
    pub e_nd: f64,
    /// Theorem 3 upper bound on `Pr(fd ≤ k) ≥ Pr(ed ≤ k)`.
    pub upper_bound: f64,
    /// `true` when the pair survives (i.e. is still a candidate).
    pub candidate: bool,
}

/// Frequency-distance filter: prunes when Lemma 6 proves `fd > k` in every
/// world, or when Theorem 3's Chebyshev bound drops to `≤ τ`.
#[derive(Debug, Clone)]
pub struct FreqFilter {
    k: usize,
    tau: f64,
    sigma: usize,
}

impl FreqFilter {
    /// Creates the filter for edit threshold `k`, probability threshold
    /// `τ`, over an alphabet of `sigma` symbols.
    pub fn new(k: usize, tau: f64, sigma: usize) -> Self {
        assert!((0.0..=1.0).contains(&tau), "tau must lie in [0, 1]");
        assert!(sigma >= 1, "alphabet must be non-empty");
        FreqFilter { k, tau, sigma }
    }

    /// Edit threshold `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Probability threshold `τ`.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Precomputes the profile for one string (cache this per string; the
    /// join driver stores profiles alongside its index).
    pub fn profile(&self, s: &UncertainString) -> FreqProfile {
        FreqProfile::new(s, self.sigma)
    }

    /// Runs the filter on a pair of precomputed profiles.
    pub fn evaluate(&self, r: &FreqProfile, s: &FreqProfile) -> FreqOutcome {
        let fd_lower = lemma6_lower_bound(r, s);
        if fd_lower as usize > self.k {
            return FreqOutcome {
                fd_lower,
                e_pd: f64::NAN,
                e_nd: f64::NAN,
                upper_bound: 0.0,
                candidate: false,
            };
        }
        let (e_pd, e_nd) = expected_distances(r, s);
        let upper_bound = theorem3_upper_bound(r.len(), s.len(), e_pd, e_nd, self.k);
        FreqOutcome {
            fd_lower,
            e_pd,
            e_nd,
            upper_bound,
            candidate: upper_bound > self.tau,
        }
    }

    /// Convenience: profile + evaluate in one call (tests, one-off pairs).
    pub fn evaluate_strings(&self, r: &UncertainString, s: &UncertainString) -> FreqOutcome {
        self.evaluate(&self.profile(r), &self.profile(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_model::Alphabet;

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    #[test]
    fn prunes_by_lemma6() {
        let filter = FreqFilter::new(1, 0.1, 4);
        // Every world of r has ≥ 4 As; s has none: fd ≥ 4 > 1.
        let out = filter.evaluate_strings(&dna("AAAA"), &dna("CGTC"));
        assert!(!out.candidate);
        assert!(out.fd_lower > 1);
        assert_eq!(out.upper_bound, 0.0);
    }

    #[test]
    fn keeps_similar_pairs() {
        let filter = FreqFilter::new(2, 0.3, 4);
        let out = filter.evaluate_strings(
            &dna("ACGT{(A,0.6),(T,0.4)}C"),
            &dna("ACG{(T,0.8),(G,0.2)}AC"),
        );
        assert!(out.candidate, "{out:?}");
    }

    #[test]
    fn chebyshev_prunes_distant_uncertain_pairs() {
        let filter = FreqFilter::new(1, 0.5, 4);
        // Expected distance far above k = 1 with little variance.
        let out = filter.evaluate_strings(
            &dna("AAAAAAAA{(A,0.9),(C,0.1)}A"),
            &dna("TTTTTTTT{(T,0.9),(G,0.1)}T"),
        );
        assert!(!out.candidate, "{out:?}");
    }

    /// Soundness: the filter never prunes a pair whose exact
    /// `Pr(ed ≤ k)` exceeds τ (checked by joint-world enumeration).
    #[test]
    fn sound_on_small_cases() {
        let cases = [
            ("A{(A,0.5),(C,0.5)}GT", "AC{(G,0.7),(T,0.3)}T"),
            ("ACGT", "ACGT"),
            ("{(A,0.2),(T,0.8)}CGT", "TC{(G,0.5),(C,0.5)}T"),
            ("AATT", "TTAA"),
        ];
        for k in 0..3usize {
            for tau_pct in [1, 10, 30, 70] {
                let tau = tau_pct as f64 / 100.0;
                let filter = FreqFilter::new(k, tau, 4);
                for (rt, st) in &cases {
                    let (r, s) = (dna(rt), dna(st));
                    let mut exact = 0.0;
                    for rw in r.worlds() {
                        for sw in s.worlds() {
                            if usj_editdist::within_k(&rw.instance, &sw.instance, k) {
                                exact += rw.prob * sw.prob;
                            }
                        }
                    }
                    let out = filter.evaluate_strings(&r, &s);
                    if exact > tau + 1e-9 {
                        assert!(
                            out.candidate,
                            "false negative k={k} tau={tau} {rt} {st}: {out:?} exact={exact}"
                        );
                    }
                    // And the bound itself dominates the exact probability.
                    assert!(out.upper_bound >= exact - 1e-9 || !out.candidate && exact <= tau);
                }
            }
        }
    }

    #[test]
    fn different_lengths_use_length_terms() {
        let filter = FreqFilter::new(1, 0.5, 4);
        // |R| − |S| = 4 → fd ≥ ... pruned by Lemma 6 (A count diff).
        let out = filter.evaluate_strings(&dna("AAAAAAAA"), &dna("AAAA"));
        assert!(!out.candidate);
    }
}
