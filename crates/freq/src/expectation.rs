//! Expected positive/negative frequency distances (paper §5).
//!
//! `pD = Σ_i (f_{R,i} − f_{S,i})^+` and `nD = Σ_i (f_{S,i} − f_{R,i})^+`
//! over the joint worlds of `R × S`. By linearity and per-character
//! independence, `E[pD] = Σ_i E[(f_{R,i} − f_{S,i})^+]` (and symmetrically
//! for `nD`).
//!
//! The naive evaluation of one character's term is a double sum over both
//! pmfs (`O(f^u_R · f^u_S)`); the paper's optimisation conditions on the
//! side with *fewer* uncertain positions and reads the other side's
//! scaled-summation arrays in `O(1)`, giving `O(min(f^u_R, f^u_S))` via
//! the identity `E[(X − Y)^+] = E[X] − E[Y] + E[(Y − X)^+]`.

use crate::profile::{CharProfile, FreqProfile};

/// `E[(f_S − f_R)^+]` for one character, iterating R's pmf (cost
/// `O(f^u_R)`; each summand reads S's `S3` array in `O(1)`).
fn expected_excess_iter_left(r: &CharProfile, s: &CharProfile) -> f64 {
    let rc = r.certain() as i64;
    let mut acc = 0.0;
    for x in 0..=r.uncertain() {
        let p = r.s1()[x as usize];
        if p == 0.0 {
            continue;
        }
        acc += p * s.expected_excess_over(rc + x as i64);
    }
    acc
}

/// `E[(f_S − f_R)^+]` for one character in `O(min(f^u_R, f^u_S))`.
pub fn expected_nd_char(r: &CharProfile, s: &CharProfile) -> f64 {
    if r.uncertain() <= s.uncertain() {
        expected_excess_iter_left(r, s)
    } else {
        // E[(f_S − f_R)^+] = E[f_S] − E[f_R] + E[(f_R − f_S)^+],
        // and the last term iterates S's (smaller) pmf.
        (s.mean() - r.mean() + expected_excess_iter_left(s, r)).max(0.0)
    }
}

/// `E[(f_R − f_S)^+]` for one character.
pub fn expected_pd_char(r: &CharProfile, s: &CharProfile) -> f64 {
    expected_nd_char(s, r)
}

/// `(E[pD], E[nD])` for a string pair.
pub fn expected_distances(r: &FreqProfile, s: &FreqProfile) -> (f64, f64) {
    assert_eq!(r.sigma(), s.sigma(), "alphabet size mismatch");
    let (mut e_pd, mut e_nd) = (0.0, 0.0);
    for (rc, sc) in r.char_profiles().zip(s.char_profiles()) {
        // Skip characters absent from both strings.
        if rc.total() == 0 && sc.total() == 0 {
            continue;
        }
        e_pd += expected_pd_char(rc, sc);
        e_nd += expected_nd_char(rc, sc);
    }
    (e_pd, e_nd)
}

/// Naive `O(f^u_R · f^u_S)` double-sum for `E[nD_i]`; retained as the
/// reference implementation for tests and the efficiency ablation
/// (bench `freq.rs`).
pub fn expected_nd_naive(r: &CharProfile, s: &CharProfile) -> f64 {
    let mut acc = 0.0;
    for x in 0..=r.uncertain() {
        let px = r.s1()[x as usize];
        let fx = (r.certain() + x) as i64;
        for y in 0..=s.uncertain() {
            let py = s.s1()[y as usize];
            let fy = (s.certain() + y) as i64;
            if fy > fx {
                acc += px * py * (fy - fx) as f64;
            }
        }
    }
    acc
}

/// Naive counterpart of [`expected_pd_char`].
pub fn expected_pd_naive(r: &CharProfile, s: &CharProfile) -> f64 {
    expected_nd_naive(s, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_model::{Alphabet, UncertainString};

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    #[test]
    fn fast_matches_naive_per_char() {
        let cases = [
            (
                CharProfile::new(0, &[0.5, 0.3]),
                CharProfile::new(1, &[0.9]),
            ),
            (
                CharProfile::new(2, &[]),
                CharProfile::new(0, &[0.1, 0.2, 0.3]),
            ),
            (CharProfile::new(1, &[0.5]), CharProfile::new(1, &[0.5])),
            (CharProfile::new(0, &[]), CharProfile::new(3, &[])),
            (
                CharProfile::new(5, &[0.2, 0.4, 0.6, 0.8]),
                CharProfile::new(0, &[0.5]),
            ),
        ];
        for (r, s) in &cases {
            let fast = expected_nd_char(r, s);
            let naive = expected_nd_naive(r, s);
            assert!((fast - naive).abs() < 1e-12, "fast={fast} naive={naive}");
            let fast_pd = expected_pd_char(r, s);
            let naive_pd = expected_pd_naive(r, s);
            assert!((fast_pd - naive_pd).abs() < 1e-12);
        }
    }

    #[test]
    fn expected_distances_match_world_enumeration() {
        let r = dna("A{(A,0.5),(C,0.5)}G{(G,0.3),(T,0.7)}");
        let s = dna("{(C,0.4),(T,0.6)}C{(A,0.2),(G,0.8)}T");
        let (e_pd, e_nd) = expected_distances(&FreqProfile::new(&r, 4), &FreqProfile::new(&s, 4));
        // Brute force over joint worlds.
        let (mut b_pd, mut b_nd) = (0.0, 0.0);
        for rw in r.worlds() {
            for sw in s.worlds() {
                let fr = usj_editdist::FreqVector::new(&rw.instance, 4);
                let fs = usj_editdist::FreqVector::new(&sw.instance, 4);
                let p = rw.prob * sw.prob;
                for i in 0..4u8 {
                    let (a, b) = (fr.count(i) as f64, fs.count(i) as f64);
                    if a > b {
                        b_pd += p * (a - b);
                    } else {
                        b_nd += p * (b - a);
                    }
                }
            }
        }
        assert!((e_pd - b_pd).abs() < 1e-9, "E[pD]: {e_pd} vs {b_pd}");
        assert!((e_nd - b_nd).abs() < 1e-9, "E[nD]: {e_nd} vs {b_nd}");
    }

    #[test]
    fn deterministic_pair_reduces_to_plain_counts() {
        let r = dna("AACG");
        let s = dna("CGTT");
        let (e_pd, e_nd) = expected_distances(&FreqProfile::new(&r, 4), &FreqProfile::new(&s, 4));
        // f(r) = [2,1,1,0], f(s) = [0,1,1,2] → pD = 2, nD = 2.
        assert!((e_pd - 2.0).abs() < 1e-12);
        assert!((e_nd - 2.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_roles() {
        let r = FreqProfile::new(&dna("A{(A,0.5),(G,0.5)}T"), 4);
        let s = FreqProfile::new(&dna("{(C,0.3),(T,0.7)}GG"), 4);
        let (pd_rs, nd_rs) = expected_distances(&r, &s);
        let (pd_sr, nd_sr) = expected_distances(&s, &r);
        assert!((pd_rs - nd_sr).abs() < 1e-12);
        assert!((nd_rs - pd_sr).abs() < 1e-12);
    }

    #[test]
    fn identical_deterministic_strings_zero() {
        let p = FreqProfile::new(&dna("ACGT"), 4);
        let (e_pd, e_nd) = expected_distances(&p, &p);
        assert_eq!(e_pd, 0.0);
        assert_eq!(e_nd, 0.0);
    }
}
