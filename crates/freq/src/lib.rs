//! Frequency-distance filtering for uncertain strings (paper §5).
//!
//! For deterministic strings the frequency distance `fd(r, s)` (see
//! `usj_editdist::freq`) lower-bounds the edit distance. For uncertain
//! strings the paper derives:
//!
//! * **Lemma 6** — a deterministic lower bound on `fd(R, S)` over *all*
//!   possible worlds from the per-character minimum (`f^c`) and maximum
//!   (`f^t`) occurrence counts; if it exceeds `k` the pair cannot be
//!   similar in any world.
//! * **Theorem 3** — an upper bound on `Pr(fd(R,S) ≤ k)` (and hence on
//!   `Pr(ed(R,S) ≤ k)`) from the expected positive/negative frequency
//!   distances `E[pD]`, `E[nD]` via the one-sided Chebyshev inequality.
//!
//! The per-character occurrence count `f_{S,i}` is a Poisson-binomial
//! random variable over the uncertain positions mentioning character `i`;
//! [`profile::CharProfile`] precomputes its distribution together with the
//! paper's `S1..S4` scaled-summation arrays so that each expectation
//! `E[(f_S − f_R)^+]` costs `O(min(f^u_R, f^u_S))` ([`expectation`]).
//!
//! [`filter::FreqFilter`] combines both bounds into a pruning decision.

#![warn(missing_docs)]

pub mod expectation;
pub mod filter;
pub mod profile;

pub use expectation::{
    expected_distances, expected_nd_char, expected_nd_naive, expected_pd_char, expected_pd_naive,
};
pub use filter::{FreqFilter, FreqOutcome};
pub use profile::{CharProfile, FreqProfile};

/// Lemma 6: a lower bound on the frequency distance between *any* pair of
/// possible worlds of `R` and `S`.
///
/// `pD = Σ_{f^t_{S,i} < f^c_{R,i}} (f^c_{R,i} − f^t_{S,i})`,
/// `nD = Σ_{f^t_{R,i} < f^c_{S,i}} (f^c_{S,i} − f^t_{R,i})`,
/// and the bound is `max(pD, nD)`.
pub fn lemma6_lower_bound(r: &FreqProfile, s: &FreqProfile) -> u32 {
    assert_eq!(r.sigma(), s.sigma(), "alphabet size mismatch");
    let (mut pd, mut nd) = (0u32, 0u32);
    for i in 0..r.sigma() {
        let (rc, rt) = (r.char_profile(i).certain(), r.char_profile(i).total());
        let (sc, st) = (s.char_profile(i).certain(), s.char_profile(i).total());
        if st < rc {
            pd += rc - st;
        }
        if rt < sc {
            nd += sc - rt;
        }
    }
    pd.max(nd)
}

/// Theorem 3: upper bound on `Pr(fd(R, S) ≤ k)` from the expected
/// frequency distances, via the one-sided Chebyshev inequality.
///
/// With `A = (||R|−|S|| + E[pD] + E[nD]) / 2` and
/// `B² = (|R|−|S|)²/2 + ||R|−|S||·(E[pD]+E[nD])/2
///       + min(|R|·E[nD], |S|·E[pD]) − A²`,
/// the bound is `B² / (B² + (A−k)²)` whenever `A > k`; when `A ≤ k` the
/// inequality is inapplicable and the bound is the trivial `1`.
pub fn theorem3_upper_bound(r_len: usize, s_len: usize, e_pd: f64, e_nd: f64, k: usize) -> f64 {
    let len_diff = (r_len as f64) - (s_len as f64);
    let abs_diff = len_diff.abs();
    let a = abs_diff / 2.0 + (e_pd + e_nd) / 2.0;
    if a <= k as f64 {
        return 1.0;
    }
    let b2 = len_diff * len_diff / 2.0
        + abs_diff * (e_pd + e_nd) / 2.0
        + (r_len as f64 * e_nd).min(s_len as f64 * e_pd)
        - a * a;
    let gap = a - k as f64;
    if b2 <= 0.0 {
        // Zero (or numerically negative) variance with mean above k: the
        // frequency distance exceeds k almost surely.
        return 0.0;
    }
    (b2 / (b2 + gap * gap)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_model::{Alphabet, UncertainString};

    fn dna(text: &str) -> UncertainString {
        UncertainString::parse(text, &Alphabet::dna()).unwrap()
    }

    fn profile(text: &str) -> FreqProfile {
        FreqProfile::new(&dna(text), 4)
    }

    #[test]
    fn lemma6_deterministic_matches_fd() {
        // For deterministic strings the Lemma 6 bound *is* the frequency
        // distance.
        let r = profile("AACGT");
        let s = profile("CGTTT");
        let expect = usj_editdist::frequency_distance(
            &Alphabet::dna().encode("AACGT").unwrap(),
            &Alphabet::dna().encode("CGTTT").unwrap(),
            4,
        );
        assert_eq!(lemma6_lower_bound(&r, &s), expect);
    }

    #[test]
    fn lemma6_lower_bounds_every_world() {
        let r = dna("A{(A,0.5),(C,0.5)}G{(G,0.3),(T,0.7)}");
        let s = dna("{(C,0.4),(T,0.6)}CTT");
        let bound = lemma6_lower_bound(&FreqProfile::new(&r, 4), &FreqProfile::new(&s, 4));
        for rw in r.worlds() {
            for sw in s.worlds() {
                let fd = usj_editdist::frequency_distance(&rw.instance, &sw.instance, 4);
                assert!(bound <= fd, "bound {bound} > fd {fd} for {rw:?} {sw:?}");
            }
        }
    }

    #[test]
    fn lemma6_zero_for_identical() {
        let r = profile("AC{(G,0.5),(T,0.5)}T");
        assert_eq!(lemma6_lower_bound(&r, &r), 0);
    }

    #[test]
    fn theorem3_trivial_when_mean_small() {
        assert_eq!(theorem3_upper_bound(10, 10, 0.5, 0.5, 2), 1.0);
        assert_eq!(theorem3_upper_bound(10, 10, 0.0, 0.0, 0), 1.0);
    }

    #[test]
    fn theorem3_decreases_with_gap() {
        // Larger expected distance → smaller bound.
        let b1 = theorem3_upper_bound(10, 10, 4.0, 4.0, 1);
        let b2 = theorem3_upper_bound(10, 10, 8.0, 8.0, 1);
        assert!(b2 < b1, "b1={b1} b2={b2}");
        assert!(b1 < 1.0);
    }

    #[test]
    fn theorem3_zero_variance_prunes() {
        // |R| = 10, |S| = 4: length difference alone forces fd ≥ 6 > k.
        // E[pD] = 6, E[nD] = 0 → A = 6, B² = 36/2 + 3·6 + 0 − 36 = 0.
        let b = theorem3_upper_bound(10, 4, 6.0, 0.0, 3);
        assert_eq!(b, 0.0);
    }

    #[test]
    #[should_panic(expected = "alphabet size mismatch")]
    fn mismatched_alphabets_panic() {
        let r = profile("ACGT");
        let s = FreqProfile::new(&dna("ACGT"), 5);
        lemma6_lower_bound(&r, &s);
    }
}
