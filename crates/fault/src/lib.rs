//! `usj-fault` — deterministic failpoint injection for the join pipeline.
//!
//! Production-scale joins die in ways unit tests never exercise: a worker
//! panic mid-wave, a slow verifier stalling a batch, an output writer
//! failing between temp-write and rename. This crate makes those failures
//! **reproducible**: code marks named failpoints with [`fail_point!`], and
//! a test (or the `USJ_FAULT_PLAN` environment variable) arms a
//! [`FaultPlan`] that says exactly *which firing* of *which failpoint*
//! panics, delays, or errors. Nothing is random at injection time — a
//! seeded plan ([`FaultPlan::seeded`]) derives its choices from the seed,
//! so every fault run can be replayed bit-for-bit.
//!
//! Disarmed cost is one relaxed atomic load per failpoint crossing, so
//! failpoints stay compiled into release builds (the fault-tolerance
//! machinery they exercise ships too) without measurable overhead.
//!
//! Injected panics carry an [`InjectedFault`] payload, so `catch_unwind`
//! sites can tell a scripted fault from an organic bug. The [`shield`]
//! module suppresses the default panic-hook backtrace for panics that a
//! driver intends to catch — a recovered fault must not spray stderr.
//!
//! This crate is **std-only by design**, like `usj-obs` and `usj-tidy`:
//! it must build where crates.io is unreachable.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

pub mod shield;

/// What an armed failpoint does when its scheduled firing is reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with an [`InjectedFault`] payload (`panic_any`, so no format
    /// machinery runs and catch sites can downcast the payload).
    Panic,
    /// Sleep for the given duration, then continue normally — models a
    /// pathologically slow probe/verifier without changing its result.
    Delay(Duration),
    /// Surface an error message to the failpoint's handler (the
    /// two-argument [`fail_point!`] form). At a failpoint with no handler
    /// an `Error` action escalates to a panic — errors must never be
    /// silently swallowed.
    Error(String),
}

/// One scheduled injection: the `nth` time (0-based, counted per point
/// since arming) the named failpoint fires, perform `action`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    point: String,
    nth: u64,
    action: FaultAction,
}

/// A deterministic injection plan: a set of `(point, nth, action)`
/// triples. Arm it with [`FaultPlan::arm`]; while armed, every crossing
/// of a failpoint consults the plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    entries: Vec<Entry>,
}

impl FaultPlan {
    /// An empty plan (arms to a no-op; useful as a builder seed).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules `action` for the `nth` firing (0-based) of `point`.
    pub fn fail_at(mut self, point: &str, nth: u64, action: FaultAction) -> Self {
        self.entries.push(Entry {
            point: point.to_string(),
            nth,
            action,
        });
        self
    }

    /// Convenience: panic the first firing of `point`.
    pub fn one_shot_panic(point: &str) -> Self {
        FaultPlan::new().fail_at(point, 0, FaultAction::Panic)
    }

    /// Derives a plan from a seed: picks one of `points`, a firing index
    /// below `max_nth`, and one of the three actions — all from an
    /// xorshift stream, so equal seeds give equal plans and a failing
    /// fault run can be reported and replayed by its seed alone.
    pub fn seeded(seed: u64, points: &[&str], max_nth: u64) -> Self {
        // xorshift64: deterministic, dependency-free; seed 0 would be a
        // fixed point, so displace it.
        let mut x = seed.wrapping_mul(2685821657736338717).max(1);
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        if points.is_empty() {
            return FaultPlan::new();
        }
        let point = points[(next() % points.len() as u64) as usize];
        let nth = next() % max_nth.max(1);
        let action = match next() % 3 {
            0 => FaultAction::Panic,
            1 => FaultAction::Delay(Duration::from_millis(1 + next() % 10)),
            _ => FaultAction::Error(format!("injected error (seed {seed})")),
        };
        FaultPlan::new().fail_at(point, nth, action)
    }

    /// Parses the `USJ_FAULT_PLAN` textual form: `;`-separated
    /// `point#nth=action` clauses where `action` is `panic`, `delay:<ms>`,
    /// or `error:<message>`. Example:
    /// `parallel.batch#2=panic;cli.write#0=error:disk full`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (point_nth, action) = clause
                .split_once('=')
                .ok_or_else(|| format!("clause {clause:?}: expected `point#nth=action`"))?;
            let (point, nth) = point_nth
                .split_once('#')
                .ok_or_else(|| format!("clause {clause:?}: expected `point#nth` before `=`"))?;
            let nth: u64 = nth
                .parse()
                .map_err(|_| format!("clause {clause:?}: firing index {nth:?} is not a number"))?;
            let action = if action == "panic" {
                FaultAction::Panic
            } else if let Some(ms) = action.strip_prefix("delay:") {
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| format!("clause {clause:?}: delay {ms:?} is not milliseconds"))?;
                FaultAction::Delay(Duration::from_millis(ms))
            } else if let Some(msg) = action.strip_prefix("error:") {
                FaultAction::Error(msg.to_string())
            } else {
                return Err(format!(
                    "clause {clause:?}: unknown action {action:?} (panic | delay:<ms> | error:<msg>)"
                ));
            };
            plan = plan.fail_at(point, nth, action);
        }
        Ok(plan)
    }

    /// Arms the plan process-wide. The returned guard keeps it armed;
    /// dropping the guard disarms. Arming serialises on a global lock so
    /// concurrent tests cannot interleave plans — do **not** arm twice on
    /// one thread (self-deadlock), hold one guard at a time.
    pub fn arm(self) -> ArmedPlan {
        let serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        *ACTIVE.lock().unwrap_or_else(PoisonError::into_inner) = Some(PlanState {
            entries: self.entries,
            hits: HashMap::new(),
        });
        // ordering: Relaxed suffices — the ACTIVE mutex above is the real
        // synchronisation for the plan contents; this flag is only a fast
        // "probably disarmed" screen, and a stale `false` merely skips an
        // injection on a thread spawned before arming (tests arm first).
        ARMED.store(true, Ordering::Relaxed);
        ArmedPlan { _serial: serial }
    }
}

/// Guard for an armed [`FaultPlan`]; dropping it disarms all failpoints.
#[must_use = "dropping the guard disarms the plan immediately"]
pub struct ArmedPlan {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for ArmedPlan {
    fn drop(&mut self) {
        // ordering: Relaxed for the same reason as in `arm` — the ACTIVE
        // mutex carries the data, the flag is only a screen.
        ARMED.store(false, Ordering::Relaxed);
        *ACTIVE.lock().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

/// Arms a plan from the `USJ_FAULT_PLAN` environment variable, if set.
/// `Ok(None)` when the variable is absent or empty; `Err` when it is
/// present but malformed (the caller should refuse to run — a mistyped
/// plan silently doing nothing would invalidate the fault test).
pub fn arm_from_env() -> Result<Option<ArmedPlan>, String> {
    match std::env::var("USJ_FAULT_PLAN") {
        Ok(spec) if !spec.trim().is_empty() => Ok(Some(FaultPlan::parse(&spec)?.arm())),
        _ => Ok(None),
    }
}

/// Panic payload of an injected [`FaultAction::Panic`]: catch sites
/// downcast to this type to distinguish scripted faults from organic
/// bugs (e.g. to count `faults_injected` precisely).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The failpoint that fired.
    pub point: String,
    /// Which firing of the point this was (0-based since arming).
    pub hit: u64,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at {}#{}", self.point, self.hit)
    }
}

struct PlanState {
    entries: Vec<Entry>,
    hits: HashMap<String, u64>,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static ACTIVE: Mutex<Option<PlanState>> = Mutex::new(None);
static SERIAL: Mutex<()> = Mutex::new(());

/// Consults the armed plan for `point`'s next firing. Returns the action
/// scheduled for this hit (with the hit index), counting the hit either
/// way. The ACTIVE guard is released before returning, so panicking or
/// sleeping on an action never holds the plan lock.
fn consult(point: &str) -> Option<(FaultAction, u64)> {
    // ordering: Relaxed — fast screen only; the mutex below synchronises.
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let mut guard = ACTIVE.lock().unwrap_or_else(PoisonError::into_inner);
    let state = guard.as_mut()?;
    let hit = {
        let h = state.hits.entry(point.to_string()).or_insert(0);
        let hit = *h;
        *h += 1;
        hit
    };
    state
        .entries
        .iter()
        .find(|e| e.point == point && e.nth == hit)
        .map(|e| (e.action.clone(), hit))
}

/// The plain failpoint hook (use via [`fail_point!`]). Returns `true`
/// when a [`FaultAction::Delay`] fired (so call sites can count it);
/// panics with [`InjectedFault`] on [`FaultAction::Panic`] — and on
/// [`FaultAction::Error`], which has no handler to land in here.
pub fn fire(point: &str) -> bool {
    match consult(point) {
        None => false,
        Some((FaultAction::Delay(d), _)) => {
            std::thread::sleep(d);
            true
        }
        Some((FaultAction::Panic | FaultAction::Error(_), hit)) => {
            std::panic::panic_any(InjectedFault {
                point: point.to_string(),
                hit,
            })
        }
    }
}

/// The error-capable failpoint hook (use via the two-argument
/// [`fail_point!`]). [`FaultAction::Error`] returns its message for the
/// handler; `Delay` sleeps and returns `None`; `Panic` panics.
pub fn fire_err(point: &str) -> Option<String> {
    match consult(point) {
        None => None,
        Some((FaultAction::Delay(d), _)) => {
            std::thread::sleep(d);
            None
        }
        Some((FaultAction::Error(msg), _)) => Some(msg),
        Some((FaultAction::Panic, hit)) => std::panic::panic_any(InjectedFault {
            point: point.to_string(),
            hit,
        }),
    }
}

/// Marks a named failpoint.
///
/// * `fail_point!("name")` — evaluates to `bool`: `true` when a delay
///   fault fired here (callers count it as an injected fault); panics
///   with [`InjectedFault`] on a panic/error action.
/// * `fail_point!("name", |msg: String| ...)` — on an error action,
///   **returns from the enclosing function** with the handler's value
///   (mirroring the `fail` crate); the handler typically builds an `Err`.
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        $crate::fire($name)
    };
    ($name:expr, $handler:expr) => {
        if let ::std::option::Option::Some(msg) = $crate::fire_err($name) {
            return ($handler)(msg);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn disarmed_failpoints_are_noops() {
        assert!(!fire("never.armed"));
        assert_eq!(fire_err("never.armed"), None);
    }

    #[test]
    fn plan_fires_on_exact_hit_only() {
        let _armed = FaultPlan::new()
            .fail_at("t.delay", 1, FaultAction::Delay(Duration::from_millis(1)))
            .arm();
        assert!(!fire("t.delay")); // hit 0
        assert!(fire("t.delay")); // hit 1: delay fires
        assert!(!fire("t.delay")); // hit 2
        // Other points are untouched.
        assert!(!fire("t.other"));
    }

    #[test]
    fn panic_action_carries_injected_payload() {
        let _armed = FaultPlan::one_shot_panic("t.panic").arm();
        let payload = catch_unwind(AssertUnwindSafe(|| {
            fire("t.panic");
        }))
        .unwrap_err();
        let fault = payload.downcast_ref::<InjectedFault>().unwrap();
        assert_eq!(fault.point, "t.panic");
        assert_eq!(fault.hit, 0);
        assert_eq!(fault.to_string(), "injected fault at t.panic#0");
        // One-shot: the second firing is clean.
        assert!(!fire("t.panic"));
    }

    #[test]
    fn error_action_reaches_the_handler() {
        fn guarded() -> Result<u32, String> {
            fail_point!("t.error", |msg: String| Err(format!("failed: {msg}")));
            Ok(7)
        }
        let _armed = FaultPlan::new()
            .fail_at("t.error", 0, FaultAction::Error("boom".to_string()))
            .arm();
        assert_eq!(guarded(), Err("failed: boom".to_string()));
        assert_eq!(guarded(), Ok(7));
    }

    #[test]
    fn error_action_without_handler_escalates_to_panic() {
        let _armed = FaultPlan::new()
            .fail_at("t.loud", 0, FaultAction::Error("x".to_string()))
            .arm();
        let payload = catch_unwind(AssertUnwindSafe(|| {
            fire("t.loud");
        }))
        .unwrap_err();
        assert!(payload.downcast_ref::<InjectedFault>().is_some());
    }

    #[test]
    fn disarm_on_drop() {
        {
            let _armed = FaultPlan::one_shot_panic("t.scoped").arm();
        }
        assert!(!fire("t.scoped"));
    }

    #[test]
    fn parse_round_trips_every_action() {
        let plan =
            FaultPlan::parse("a.b#2=panic; c.d#0=delay:25 ;e.f#7=error:disk full").unwrap();
        let want = FaultPlan::new()
            .fail_at("a.b", 2, FaultAction::Panic)
            .fail_at("c.d", 0, FaultAction::Delay(Duration::from_millis(25)))
            .fail_at("e.f", 7, FaultAction::Error("disk full".to_string()));
        assert_eq!(plan, want);
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::new());
        assert!(FaultPlan::parse("a.b=panic").is_err()); // missing #nth
        assert!(FaultPlan::parse("a.b#x=panic").is_err()); // bad index
        assert!(FaultPlan::parse("a.b#0=explode").is_err()); // bad action
        assert!(FaultPlan::parse("a.b#0").is_err()); // missing action
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let points = ["p.one", "p.two", "p.three"];
        let a = FaultPlan::seeded(42, &points, 8);
        let b = FaultPlan::seeded(42, &points, 8);
        assert_eq!(a, b);
        assert_eq!(a.entries.len(), 1);
        assert!(points.contains(&a.entries[0].point.as_str()));
        assert!(a.entries[0].nth < 8);
        // Across many seeds, every action kind shows up — the plan space
        // is actually explored, not collapsed to one corner.
        let mut kinds = [false; 3];
        for seed in 0..64 {
            match FaultPlan::seeded(seed, &points, 8).entries[0].action {
                FaultAction::Panic => kinds[0] = true,
                FaultAction::Delay(_) => kinds[1] = true,
                FaultAction::Error(_) => kinds[2] = true,
            }
        }
        assert_eq!(kinds, [true; 3]);
        assert_eq!(FaultPlan::seeded(1, &[], 4), FaultPlan::new());
    }

    #[test]
    fn shielded_catch_runs_and_restores() {
        let _armed = FaultPlan::one_shot_panic("t.shield").arm();
        let caught = shield::shielded(|| {
            catch_unwind(AssertUnwindSafe(|| {
                fire("t.shield");
            }))
        });
        assert!(caught.is_err());
        // The thread-local flag is restored even after an unwind.
        assert!(!shield::is_shielded());
    }
}
