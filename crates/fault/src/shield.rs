//! Panic-hook shielding for recoverable sections.
//!
//! A driver that catches a worker panic (to quarantine the probe and
//! retry the batch) has *handled* the failure — yet the default panic
//! hook has already printed `thread '...' panicked at ...` and possibly a
//! backtrace by the time `catch_unwind` returns. This module installs a
//! wrapping hook once: while the current thread is inside [`shielded`],
//! the hook prints nothing; everywhere else it defers to whatever hook
//! was installed before (so organic panics stay as loud as ever).

use std::cell::Cell;
use std::panic;
use std::sync::Once;

thread_local! {
    static SHIELDED: Cell<bool> = const { Cell::new(false) };
}

static INSTALL: Once = Once::new();

/// Installs the wrapping panic hook (idempotent, thread-safe). Called
/// automatically by [`shielded`]; exposed so binaries can install it
/// before spawning workers.
pub fn install() {
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !is_shielded() {
                previous(info);
            }
        }));
    });
}

/// True when the current thread is inside a [`shielded`] section.
pub fn is_shielded() -> bool {
    SHIELDED.with(|s| s.get())
}

/// Runs `f` with this thread's panics silenced at the hook level. The
/// caller is expected to `catch_unwind` inside `f`; the flag is restored
/// on the way out even if a panic escapes `f` (drop guard), so an
/// unhandled panic that unwinds further up the stack reports normally.
pub fn shielded<T>(f: impl FnOnce() -> T) -> T {
    install();
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            SHIELDED.with(|s| s.set(self.0));
        }
    }
    let _restore = Restore(SHIELDED.with(|s| s.replace(true)));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn flag_is_scoped_and_restored_on_unwind() {
        assert!(!is_shielded());
        shielded(|| assert!(is_shielded()));
        assert!(!is_shielded());

        let r = catch_unwind(AssertUnwindSafe(|| {
            shielded(|| panic!("escapes the shield"));
        }));
        assert!(r.is_err());
        assert!(!is_shielded());
    }

    #[test]
    fn nested_shields_stack() {
        shielded(|| {
            shielded(|| assert!(is_shielded()));
            assert!(is_shielded());
        });
        assert!(!is_shielded());
    }
}
