//! Scatter-gather coordinator fronting a fleet of length-band shards.
//!
//! The coordinator speaks the same wire protocol as a single server, so
//! clients cannot tell one process from a fleet — except through the
//! `SHARDS` verb and the `DEGRADED shards=<ok>/<total>` marker. Each
//! `PROBE` is scattered to the shards whose length band intersects
//! `[len(R) − k, len(R) + k]` (the paper's length filter prunes the
//! fan-out), with:
//!
//! * **per-shard deadlines** carved from the request's remaining
//!   `deadline_ms` budget at each dispatch;
//! * **hedged seconds** — a shard silent past the hedge delay
//!   (max of the observed p99 shard latency and `hedge_after`) gets a
//!   second, identical request; the first answer wins and the loser is
//!   cancelled at the protocol level (its answer is discarded and its
//!   connection dies with the worker thread);
//! * **bounded retry with jittered backoff** inside each dispatch,
//!   reusing [`Client`]'s policy (each shard client gets a
//!   deterministic per-(request, shard, hedge) jitter seed);
//! * **health tracking** — `quarantine_after` consecutive failures
//!   bench a shard for `quarantine_cooldown`; after the cooldown the
//!   next relevant probe is a half-open trial whose success readmits
//!   the shard and whose failure re-quarantines it;
//! * an explicit **partial-result policy** — when some relevant shards
//!   cannot answer, strict mode refuses the request while degraded
//!   mode serves the union of the surviving shards' answers marked
//!   `DEGRADED shards=<ok>/<total>` (a sound superset of what the
//!   surviving shards hold; never a silently truncated `OK`).
//!
//! Failure containment mirrors the single server: every request line is
//! handled inside the `usj-fault` shield + `catch_unwind` perimeter, so
//! a panic injected at `coord.dispatch` / `coord.gather` / `coord.hedge`
//! poisons one request (`ERR internal panic: …`) and never the
//! listener. Coordinator admission is deliberately panic-free plain
//! queueing — it carries no failpoint and needs no perimeter.
//!
//! Merging is bit-exact: shards own disjoint id sets and answer hits as
//! collection-global `(id, prob-bits)` pairs, so concatenating exact
//! answers and sorting by id reproduces the single-node server's answer
//! bit for bit (proven by the N-shard differential suite).

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use usj_core::Partition;
use usj_fault::shield;
use usj_model::{Alphabet, UncertainString};
use usj_obs::{
    band_of, CollectingRecorder, Counter, Gauge, MergeRecorder, MetricsRegistry, Recorder,
};

use crate::client::{Client, ClientConfig, ClientError, ProbeOutcome};
use crate::proto::{parse_request, Request, Response, ShardState};
use crate::server::panic_message;

/// One shard as the coordinator sees it: where to reach it and which
/// length band it owns.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// The shard server's address (`host:port`).
    pub addr: String,
    /// `(min_len, max_len)` of the strings the shard owns, or `None`
    /// for an empty shard (never probed).
    pub band: Option<(usize, usize)>,
}

impl ShardSpec {
    /// Pairs a partition's bands with the fleet's addresses. Errors when
    /// the counts disagree — a mis-sized fleet would silently lose data.
    pub fn from_partition(
        partition: &Partition,
        addrs: &[String],
    ) -> Result<Vec<ShardSpec>, String> {
        if partition.len() != addrs.len() {
            return Err(format!(
                "partition has {} shards but {} addresses were given",
                partition.len(),
                addrs.len()
            ));
        }
        Ok(partition
            .shards
            .iter()
            .zip(addrs)
            .map(|(slice, addr)| ShardSpec {
                addr: addr.clone(),
                band: if slice.ids.is_empty() {
                    None
                } else {
                    Some((slice.min_len, slice.max_len))
                },
            })
            .collect())
    }

    /// Can this shard hold a match for a probe of length `probe_len`
    /// under threshold `k`?
    fn relevant(&self, probe_len: usize, k: usize) -> bool {
        match self.band {
            Some((min, max)) => {
                min <= probe_len.saturating_add(k) && max.saturating_add(k) >= probe_len
            }
            None => false,
        }
    }
}

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct CoordConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads serving popped connections.
    pub workers: usize,
    /// Admission-queue capacity; a full queue rejects with `BUSY`.
    pub queue_cap: usize,
    /// Socket read/write timeout toward clients.
    pub io_timeout: Duration,
    /// Budget applied to probes that do not carry their own
    /// `deadline_ms`; per-shard deadlines are carved from what remains.
    pub default_deadline: Option<Duration>,
    /// Backoff hint sent with `BUSY` rejections.
    pub retry_after_ms: u64,
    /// The fleet's (k, τ) — every shard is indexed for this pair.
    pub k: usize,
    /// Probability threshold matching the shard indices.
    pub tau: f64,
    /// Partial-result policy: `true` refuses any request some relevant
    /// shard cannot answer; `false` serves the marked superset.
    pub strict: bool,
    /// Floor for the hedge delay (the delay is the max of this and the
    /// observed p99 shard latency).
    pub hedge_after: Duration,
    /// Consecutive failures before a shard is quarantined.
    pub quarantine_after: u32,
    /// How long a quarantined shard is benched before a half-open trial.
    pub quarantine_cooldown: Duration,
    /// Template for per-shard clients (retry budget, backoff window,
    /// base jitter seed).
    pub client: ClientConfig,
}

impl Default for CoordConfig {
    fn default() -> Self {
        CoordConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_cap: 16,
            io_timeout: Duration::from_secs(5),
            default_deadline: Some(Duration::from_secs(2)),
            retry_after_ms: 50,
            k: 1,
            tau: 0.1,
            strict: false,
            hedge_after: Duration::from_millis(20),
            quarantine_after: 3,
            quarantine_cooldown: Duration::from_millis(500),
            client: ClientConfig::default(),
        }
    }
}

/// Per-shard health record behind the coordinator's health table.
#[derive(Debug, Clone, Default)]
struct ShardHealth {
    /// Consecutive failed requests (reset by any success).
    consecutive_failures: u32,
    /// `Some(t)` while quarantined; past `t` the shard is half-open.
    quarantined_until: Option<Instant>,
}

impl ShardHealth {
    fn state(&self, now: Instant) -> ShardState {
        match self.quarantined_until {
            Some(until) if now < until => ShardState::Quarantined,
            Some(_) => ShardState::HalfOpen,
            None => ShardState::Healthy,
        }
    }
}

/// Sliding window of shard response latencies for the p99 hedge delay
/// (same nearest-rank scheme as the degradation ladder's ring).
struct LatencyRing {
    samples: Vec<Duration>,
    next: usize,
    cap: usize,
}

impl LatencyRing {
    fn new(cap: usize) -> LatencyRing {
        LatencyRing {
            samples: Vec::with_capacity(cap),
            next: 0,
            cap,
        }
    }

    fn push(&mut self, sample: Duration) {
        if self.samples.len() < self.cap {
            self.samples.push(sample);
        } else {
            self.samples[self.next] = sample;
            self.next = (self.next + 1) % self.cap;
        }
    }

    /// Nearest-rank p99 of the window; `None` until any sample lands.
    fn p99(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = (sorted.len() * 99).div_ceil(100).max(1);
        Some(sorted[rank - 1])
    }
}

/// State shared by the accept thread, the workers, and the handle.
struct Shared {
    cfg: CoordConfig,
    alphabet: Alphabet,
    shards: Vec<ShardSpec>,
    addr: SocketAddr,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    stop: AtomicBool,
    inflight: AtomicUsize,
    probe_seq: AtomicUsize,
    health: Mutex<Vec<ShardHealth>>,
    latencies: Mutex<LatencyRing>,
    recorder: Mutex<CollectingRecorder>,
    registry: MetricsRegistry,
}

/// Handle to a running coordinator (same contract as
/// [`crate::server::ServerHandle`]).
pub struct CoordinatorHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Binds the coordinator, spawns its accept thread and worker pool, and
/// returns immediately. `shards` is the fleet (addresses + length
/// bands); `alphabet` parses probe operands for length-filter pruning.
pub fn coordinate(
    shards: Vec<ShardSpec>,
    alphabet: Alphabet,
    cfg: CoordConfig,
) -> io::Result<CoordinatorHandle> {
    if shards.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "a coordinator needs at least one shard",
        ));
    }
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let workers = cfg.workers.max(1);
    let shared = Arc::new(Shared {
        health: Mutex::new(vec![ShardHealth::default(); shards.len()]),
        latencies: Mutex::new(LatencyRing::new(64)),
        cfg,
        alphabet,
        shards,
        addr,
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        stop: AtomicBool::new(false),
        inflight: AtomicUsize::new(0),
        probe_seq: AtomicUsize::new(0),
        recorder: Mutex::new(CollectingRecorder::new()),
        registry: MetricsRegistry::default(),
    });
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("usj-coord-accept".to_string())
            .spawn(move || accept_loop(&shared, listener))?
    };
    let worker_threads = (0..workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("usj-coord-worker-{i}"))
                .spawn(move || worker_loop(&shared))
        })
        .collect::<io::Result<Vec<_>>>()?;
    Ok(CoordinatorHandle {
        shared,
        accept: Some(accept),
        workers: worker_threads,
    })
}

impl CoordinatorHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The live Prometheus exposition: the golden-schema registry plus
    /// one `usj_shard_up{shard="<i>"}` series per shard (1 healthy or
    /// half-open, 0 quarantined).
    pub fn metrics_text(&self) -> String {
        self.shared.metrics_text()
    }

    /// Each shard's current health-machine state.
    pub fn shard_states(&self) -> Vec<ShardState> {
        self.shared.shard_states(Instant::now())
    }

    /// A live observability snapshot (pretty JSON, golden schema).
    pub fn stats_json(&self) -> String {
        self.shared
            .recorder
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .to_json()
    }

    /// Graceful drain of the coordinator itself (shards keep running;
    /// they are their own processes with their own drains).
    pub fn shutdown(mut self) -> String {
        self.shared.begin_drain();
        self.join_all();
        self.stats_json()
    }

    /// Blocks until a wire-level `SHUTDOWN` drains the coordinator.
    pub fn wait(mut self) -> String {
        self.join_all();
        self.stats_json()
    }

    fn join_all(&mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Shared {
    fn record<T>(&self, f: impl FnOnce(&mut CollectingRecorder) -> T) -> T {
        let mut r = self.recorder.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut r)
    }

    fn queue_depth(&self) -> usize {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    fn draining(&self) -> bool {
        // ordering: Acquire — pairs with the Release store in
        // `begin_drain`, so a thread observing the flag also observes
        // everything the draining thread wrote before raising it.
        self.stop.load(Ordering::Acquire)
    }

    fn begin_drain(&self) {
        // ordering: Release — pairs with the Acquire loads in
        // `draining()` on the accept and worker threads.
        self.stop.store(true, Ordering::Release);
        self.queue_cv.notify_all();
        let _ = TcpStream::connect(self.addr);
    }

    fn shard_states(&self, now: Instant) -> Vec<ShardState> {
        let health = self.health.lock().unwrap_or_else(PoisonError::into_inner);
        health.iter().map(|h| h.state(now)).collect()
    }

    fn healthy_count(&self, now: Instant) -> usize {
        self.shard_states(now)
            .iter()
            .filter(|s| !matches!(s, ShardState::Quarantined))
            .count()
    }

    /// A shard answered: reset its failure streak and readmit it (a
    /// half-open trial success ends the quarantine).
    fn on_shard_success(&self, idx: usize) {
        let mut health = self.health.lock().unwrap_or_else(PoisonError::into_inner);
        health[idx].consecutive_failures = 0;
        health[idx].quarantined_until = None;
    }

    /// A shard failed a request. Returns `true` when this failure
    /// *transitions* the shard into quarantine (threshold reached, or a
    /// half-open trial failed) so the caller can count it.
    fn on_shard_failure(&self, idx: usize, now: Instant) -> bool {
        let mut health = self.health.lock().unwrap_or_else(PoisonError::into_inner);
        let h = &mut health[idx];
        h.consecutive_failures += 1;
        let was_trial = matches!(h.state(now), ShardState::HalfOpen);
        if was_trial || h.consecutive_failures >= self.cfg.quarantine_after {
            h.quarantined_until = Some(now + self.cfg.quarantine_cooldown);
            return true;
        }
        false
    }

    fn hedge_delay(&self) -> Duration {
        let p99 = {
            let ring = self
                .latencies
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            ring.p99()
        };
        match p99 {
            Some(p99) => p99.max(self.cfg.hedge_after),
            None => self.cfg.hedge_after,
        }
    }

    fn note_latency(&self, sample: Duration) {
        let mut ring = self
            .latencies
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        ring.push(sample);
    }

    fn metrics_text(&self) -> String {
        let mut text = self.registry.render_prometheus();
        // Live per-shard health as a labeled series, appended after the
        // schema-stable golden exposition (which stays byte-identical to
        // a single server's — dashboards work unchanged).
        text.push_str("# TYPE usj_shard_up gauge\n");
        for (idx, state) in self.shard_states(Instant::now()).iter().enumerate() {
            let up = u8::from(!matches!(state, ShardState::Quarantined));
            text.push_str(&format!("usj_shard_up{{shard=\"{idx}\"}} {up}\n"));
        }
        text
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.draining() {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Plain bounded queueing, deliberately panic-free (no failpoint,
        // no catch_unwind perimeter needed): shed or push, nothing else.
        admit(shared, stream);
    }
}

fn admit(shared: &Shared, stream: TcpStream) {
    let depth = shared.queue_depth();
    if depth >= shared.cfg.queue_cap {
        shared.record(|r| r.counter(Counter::ServeShed, 1));
        let mut stream = stream;
        let _ = stream.set_write_timeout(Some(shared.cfg.io_timeout));
        let busy = Response::Busy {
            retry_after_ms: shared.cfg.retry_after_ms,
        };
        let _ = stream.write_all(busy.encode().as_bytes());
        let _ = stream.write_all(b"\n");
        return;
    }
    let depth = {
        let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        queue.push_back(stream);
        queue.len()
    };
    shared.record(|r| {
        r.counter(Counter::ServeAccepted, 1);
        r.gauge(Gauge::ServeQueueDepth, depth as u64);
    });
    shared.queue_cv.notify_one();
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(stream) = queue.pop_front() {
                    break stream;
                }
                if shared.draining() {
                    return;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        };
        // ordering: Relaxed — inflight is reported in HEALTH only; no
        // other memory depends on it.
        shared.inflight.fetch_add(1, Ordering::Relaxed);
        handle_conn(shared, stream);
        shared.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Serves one client connection: line in, line out, until EOF, timeout,
/// `BYE`, or drain. Each line runs inside the panic perimeter.
fn handle_conn(shared: &Shared, stream: TcpStream) {
    if stream
        .set_read_timeout(Some(shared.cfg.io_timeout))
        .is_err()
    {
        return;
    }
    let _ = stream.set_write_timeout(Some(shared.cfg.io_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {}
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        let outcome =
            shield::shielded(|| catch_unwind(AssertUnwindSafe(|| handle_line(shared, &line))));
        let response = outcome.unwrap_or_else(|payload| {
            // A panic (injected at coord.dispatch/gather/hedge or
            // otherwise) poisons one request; the worker and the
            // listener survive.
            shared.record(|r| r.counter(Counter::ServePanics, 1));
            Response::Err(format!(
                "internal panic: {}",
                panic_message(&*payload)
            ))
        });
        let done = matches!(response, Response::Bye);
        if writer.write_all(response.encode().as_bytes()).is_err() {
            return;
        }
        if writer.write_all(b"\n").is_err() {
            return;
        }
        let _ = writer.flush();
        if done || shared.draining() {
            return;
        }
    }
}

/// Handles one request line. The `coord.dispatch` failpoint fires here —
/// before fan-out — so an injected panic proves the perimeter isolates
/// the whole scatter-gather path.
fn handle_line(shared: &Shared, line: &str) -> Response {
    if usj_fault::fire("coord.dispatch") {
        shared.record(|r| r.counter(Counter::FaultsInjected, 1));
    }
    let request = match parse_request(line) {
        Ok(request) => request,
        Err(msg) => return Response::Err(msg),
    };
    match request {
        Request::Health => {
            // The coordinator's ladder level is fleet coverage: 0 all
            // shards reachable, 1 some quarantined, 2 none left.
            let healthy = shared.healthy_count(Instant::now());
            let level = if healthy == shared.shards.len() {
                0
            } else if healthy > 0 {
                1
            } else {
                2
            };
            Response::Health {
                level,
                queue: shared.queue_depth(),
                // ordering: Relaxed — monitoring read, see worker_loop.
                inflight: shared.inflight.load(Ordering::Relaxed),
                // The coordinator holds no index, so it is never warm
                // itself; per-shard warmth is visible via each shard's
                // own HEALTH endpoint.
                warm: Some(false),
                snapshot_age_s: None,
            }
        }
        Request::Stats => {
            let json = shared.record(|r| r.to_json());
            Response::Stats(json.lines().map(str::trim_start).collect())
        }
        Request::Metrics => Response::Metrics(shared.metrics_text()),
        Request::Shards => Response::Shards(shared.shard_states(Instant::now())),
        Request::Shutdown => {
            shared.begin_drain();
            Response::Bye
        }
        Request::Probe {
            k,
            tau,
            deadline_ms,
            // Trace ids are a single-server feature: a scatter-gather
            // has no one server-side trace to forward, so the option is
            // accepted and ignored (the client tolerates a missing
            // TRACE line).
            trace_id: _,
            text,
        } => handle_probe(shared, k, tau, deadline_ms, &text),
    }
}

/// One attempt's answer travelling back from a dispatch thread.
struct ShardAnswer {
    shard: usize,
    hedge: bool,
    elapsed: Duration,
    result: Result<ProbeOutcome, String>,
}

/// Book-keeping for one relevant shard during a gather.
struct Pending {
    shard: usize,
    /// Dispatches in flight (primary, plus a hedge once sent).
    outstanding: u32,
    /// Failures received so far from this shard's dispatches.
    failures: u32,
    hedged: bool,
    outcome: Option<ProbeOutcome>,
    /// Did the winning answer come from the hedge?
    won_by_hedge: bool,
}

fn handle_probe(
    shared: &Shared,
    k: usize,
    tau: f64,
    deadline_ms: Option<u64>,
    text: &str,
) -> Response {
    let started = Instant::now();
    if k != shared.cfg.k || (tau - shared.cfg.tau).abs() > 1e-9 {
        return Response::Err(format!(
            "this fleet is indexed for k={} tau={} (got k={k} tau={tau})",
            shared.cfg.k, shared.cfg.tau
        ));
    }
    // Parse locally only to learn the probe's length (for band pruning)
    // and to reject garbage before burning fleet capacity; shards parse
    // the forwarded text themselves.
    let probe = match UncertainString::parse(text, &shared.alphabet) {
        Ok(probe) => probe,
        Err(e) => return Response::Err(format!("bad probe: {e}")),
    };
    let deadline = deadline_ms
        .map(Duration::from_millis)
        .or(shared.cfg.default_deadline);
    let (relevant, skipped) = select_shards(shared, probe.len(), k);
    let total = (relevant.len() + skipped) as u32;
    // ordering: Relaxed — the sequence only labels per-probe histogram
    // buckets; no other memory depends on it.
    let probe_id = shared.probe_seq.fetch_add(1, Ordering::Relaxed) as u32;
    let mut local = CollectingRecorder::new();
    local.probe_start(probe_id);
    let response = gather(
        shared,
        &relevant,
        total,
        k,
        tau,
        text,
        started,
        deadline,
        &mut local,
    );
    local.probe_end(probe_id);
    local.gauge(
        Gauge::ShardHealthy,
        shared.healthy_count(Instant::now()) as u64,
    );
    shared.registry.fold(Some(band_of(probe.len())), &local);
    shared.record(|r| r.absorb(local));
    response
}

/// The scatter set for a probe of length `probe_len`: shard indices to
/// dial, plus how many relevant shards are benched in quarantine (they
/// still count toward the total so a partial answer is visibly
/// partial). A half-open shard is dialed — that is its recovery trial.
fn select_shards(shared: &Shared, probe_len: usize, k: usize) -> (Vec<usize>, usize) {
    let now = Instant::now();
    let states = shared.shard_states(now);
    let mut relevant = Vec::new();
    let mut skipped = 0usize;
    for (idx, spec) in shared.shards.iter().enumerate() {
        if !spec.relevant(probe_len, k) {
            continue;
        }
        if matches!(states[idx], ShardState::Quarantined) {
            skipped += 1;
        } else {
            relevant.push(idx);
        }
    }
    (relevant, skipped)
}

/// Dispatches one attempt (primary or hedge) for `shard` on its own
/// thread; the result comes back over `tx`.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    shared: &Shared,
    shard: usize,
    hedge: bool,
    k: usize,
    tau: f64,
    text: &str,
    started: Instant,
    deadline: Option<Duration>,
    tx: &mpsc::Sender<ShardAnswer>,
) {
    // The per-shard deadline is the *remaining* request budget at this
    // dispatch — a late hedge gets a tighter allowance than the primary.
    let remaining = deadline.map(|d| d.saturating_sub(started.elapsed()));
    let cfg = ClientConfig {
        deadline: remaining,
        // Deterministic per-(shard, hedge) schedule derived from the
        // template seed, so soak runs replay identically.
        jitter_seed: shared
            .cfg
            .client
            .jitter_seed
            .wrapping_add((shard as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(u64::from(hedge)),
        ..shared.cfg.client.clone()
    };
    let addr = shared.shards[shard].addr.clone();
    let text = text.to_string();
    let tx = tx.clone();
    let dispatched = Instant::now();
    // Detached worker: if the request completes first (the other twin
    // won, or the gather deadline fired), the receiver is gone, the
    // send fails silently, and the thread exits — protocol-level
    // cancellation without tearing down sockets mid-read.
    let _ = std::thread::Builder::new()
        .name(format!("usj-coord-dispatch-{shard}"))
        .spawn(move || {
            let mut client = Client::new(addr, cfg);
            let result = client
                .probe(k, tau, &text)
                .map_err(|e| classify(&e));
            let _ = tx.send(ShardAnswer {
                shard,
                hedge,
                elapsed: dispatched.elapsed(),
                result,
            });
        });
}

/// Collapses a client error to the short form the coordinator reports
/// and counts (the full error already surfaced in the client's retries).
fn classify(e: &ClientError) -> String {
    match e {
        ClientError::Busy { .. } => "busy".to_string(),
        ClientError::Deadline => "deadline".to_string(),
        ClientError::Io(_) => "io".to_string(),
        ClientError::Protocol(msg) => format!("protocol: {msg}"),
        ClientError::Server(msg) => format!("server: {msg}"),
    }
}

/// The gather loop: collects per-shard answers, hedges silent shards
/// after the hedge delay, updates shard health, and combines answers
/// under the partial-result policy.
#[allow(clippy::too_many_arguments)]
fn gather(
    shared: &Shared,
    relevant: &[usize],
    total: u32,
    k: usize,
    tau: f64,
    text: &str,
    started: Instant,
    deadline: Option<Duration>,
    local: &mut CollectingRecorder,
) -> Response {
    if usj_fault::fire("coord.gather") {
        local.counter(Counter::FaultsInjected, 1);
    }
    if total == 0 {
        // No shard's band intersects [len−k, len+k]: the exact answer
        // is empty by the length filter, no fan-out needed.
        local.counter(Counter::ServeFull, 1);
        return Response::Ok(Vec::new());
    }
    let (tx, rx) = mpsc::channel::<ShardAnswer>();
    let mut pending: Vec<Pending> = relevant
        .iter()
        .map(|&shard| {
            dispatch(shared, shard, false, k, tau, text, started, deadline, &tx);
            Pending {
                shard,
                outstanding: 1,
                failures: 0,
                hedged: false,
                outcome: None,
                won_by_hedge: false,
            }
        })
        .collect();
    let hedge_delay = shared.hedge_delay();
    let hedge_at = started + hedge_delay;
    loop {
        let unanswered = pending
            .iter()
            .filter(|p| p.outcome.is_none() && p.failures < p.outstanding.max(1))
            .count();
        let still_running = pending
            .iter()
            .any(|p| p.outcome.is_none() && p.failures < p.outstanding);
        if unanswered == 0 && !still_running {
            break;
        }
        let now = Instant::now();
        // Out of deadline budget: whatever answered is all we serve.
        let remaining = match deadline {
            Some(d) => {
                let r = d.saturating_sub(now - started);
                if r.is_zero() {
                    break;
                }
                r
            }
            None => Duration::from_secs(3600),
        };
        let until_hedge = if pending.iter().any(|p| !p.hedged && p.outcome.is_none()) {
            hedge_at.saturating_duration_since(now)
        } else {
            remaining
        };
        let wait = remaining.min(until_hedge.max(Duration::from_millis(1)));
        match rx.recv_timeout(wait) {
            Ok(answer) => {
                let Some(p) = pending.iter_mut().find(|p| p.shard == answer.shard) else {
                    continue;
                };
                if p.outcome.is_some() {
                    continue; // the twin already won
                }
                match answer.result {
                    Ok(outcome) => {
                        shared.note_latency(answer.elapsed);
                        shared.on_shard_success(answer.shard);
                        p.outcome = Some(outcome);
                        p.won_by_hedge = answer.hedge;
                        if answer.hedge {
                            local.counter(Counter::HedgesWon, 1);
                        }
                    }
                    Err(_) => {
                        p.failures += 1;
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        // Hedge pass: every shard still silent past the delay gets one
        // second identical dispatch (first answer wins).
        if Instant::now() >= hedge_at {
            for p in pending.iter_mut() {
                if p.hedged || p.outcome.is_some() {
                    continue;
                }
                if usj_fault::fire("coord.hedge") {
                    local.counter(Counter::FaultsInjected, 1);
                }
                dispatch(shared, p.shard, true, k, tau, text, started, deadline, &tx);
                p.hedged = true;
                p.outstanding += 1;
                local.counter(Counter::HedgesSent, 1);
            }
        }
    }
    drop(rx); // any straggler dispatch thread now exits on send
    // Health bookkeeping for shards that never answered.
    let now = Instant::now();
    for p in &pending {
        if p.outcome.is_none() && shared.on_shard_failure(p.shard, now) {
            local.counter(Counter::ShardsQuarantined, 1);
        }
    }
    combine(shared, &pending, total, started, local)
}

/// Merges per-shard answers under the partial-result policy.
fn combine(
    shared: &Shared,
    pending: &[Pending],
    total: u32,
    started: Instant,
    local: &mut CollectingRecorder,
) -> Response {
    let answered = pending.iter().filter(|p| p.outcome.is_some()).count() as u32;
    let all_exact = pending
        .iter()
        .all(|p| matches!(p.outcome, Some(ProbeOutcome::Exact(_))));
    if answered == total && all_exact {
        // Shards own disjoint id sets and answer ascending global ids:
        // merging and sorting by id reproduces the single-node answer
        // bit for bit.
        let mut hits: Vec<(u32, f64)> = Vec::new();
        for p in pending {
            if let Some(ProbeOutcome::Exact(shard_hits)) = &p.outcome {
                hits.extend_from_slice(shard_hits);
            }
        }
        hits.sort_unstable_by_key(|&(id, _)| id);
        local.counter(Counter::ServeFull, 1);
        return Response::Ok(hits);
    }
    if answered < total && shared.cfg.strict {
        // Strict mode: a partial answer is worse than no answer.
        if started.elapsed() >= shared.cfg.default_deadline.unwrap_or(Duration::MAX) {
            local.counter(Counter::ServeDeadline, 1);
            return Response::Deadline {
                elapsed_ms: started.elapsed().as_millis().min(u64::MAX as u128) as u64,
            };
        }
        return Response::Err(format!(
            "strict partial-result policy: only {answered}/{total} shards answered"
        ));
    }
    // Degraded: the union of everything the answering shards hold is a
    // sound superset of their exact hits. The shards marker appears
    // exactly when fleet coverage was partial — a truncated answer is
    // never served as a clean OK or an unmarked DEGRADED.
    let mut ids: Vec<u32> = Vec::new();
    for p in pending {
        match &p.outcome {
            Some(ProbeOutcome::Exact(hits)) => ids.extend(hits.iter().map(|&(id, _)| id)),
            Some(ProbeOutcome::Degraded {
                ids: shard_ids, ..
            }) => ids.extend_from_slice(shard_ids),
            None => {}
        }
    }
    ids.sort_unstable();
    ids.dedup();
    local.counter(Counter::ServeDegraded, 1);
    let shards = if answered < total {
        local.counter(Counter::PartialResponses, 1);
        Some((answered, total))
    } else {
        None
    };
    Response::Degraded { ids, shards }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_ring_p99_is_nearest_rank_and_windowed() {
        let mut ring = LatencyRing::new(4);
        assert_eq!(ring.p99(), None);
        for ms in [10u64, 20, 30, 40] {
            ring.push(Duration::from_millis(ms));
        }
        assert_eq!(ring.p99(), Some(Duration::from_millis(40)));
        // Overwrites evict the oldest sample.
        ring.push(Duration::from_millis(5));
        assert_eq!(ring.p99(), Some(Duration::from_millis(40)));
        ring.push(Duration::from_millis(6));
        ring.push(Duration::from_millis(7));
        ring.push(Duration::from_millis(8));
        assert_eq!(ring.p99(), Some(Duration::from_millis(8)));
    }

    #[test]
    fn shard_spec_relevance_uses_the_length_filter() {
        let spec = ShardSpec {
            addr: "x".to_string(),
            band: Some((10, 20)),
        };
        assert!(spec.relevant(10, 0));
        assert!(spec.relevant(8, 2));
        assert!(spec.relevant(22, 2));
        assert!(!spec.relevant(7, 2));
        assert!(!spec.relevant(23, 2));
        let empty = ShardSpec {
            addr: "x".to_string(),
            band: None,
        };
        assert!(!empty.relevant(10, 100));
    }

    #[test]
    fn from_partition_rejects_mismatched_fleets() {
        let p = Partition::by_length(&[3, 4, 5], 2);
        let err = ShardSpec::from_partition(&p, &["a:1".to_string()]).unwrap_err();
        assert!(err.contains("2 shards but 1 addresses"));
        let specs =
            ShardSpec::from_partition(&p, &["a:1".to_string(), "b:2".to_string()]).unwrap();
        assert_eq!(specs.len(), 2);
        assert!(specs.iter().all(|s| s.band.is_some()));
    }

    #[test]
    fn health_machine_quarantines_and_reopens() {
        let h = ShardHealth {
            consecutive_failures: 0,
            quarantined_until: None,
        };
        let now = Instant::now();
        assert_eq!(h.state(now), ShardState::Healthy);
        let q = ShardHealth {
            consecutive_failures: 3,
            quarantined_until: Some(now + Duration::from_millis(100)),
        };
        assert_eq!(q.state(now), ShardState::Quarantined);
        assert_eq!(
            q.state(now + Duration::from_millis(150)),
            ShardState::HalfOpen
        );
    }
}
