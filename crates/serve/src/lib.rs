//! # usj-serve — overload-resilient query service
//!
//! A threaded TCP line-protocol server exposing the uncertain-string
//! search primitive (`PROBE <k> <tau> <uncertain-string>`) over one
//! shared [`usj_core::IndexedCollection`], built to stay correct and
//! alive under overload:
//!
//! - **Bounded admission** — a fixed-capacity queue in front of the
//!   worker pool; when it fills, new connections are rejected with an
//!   explicit `BUSY retry_after_ms=..` instead of queueing without
//!   limit ([`server::ServeConfig::queue_cap`]).
//! - **Degradation ladder** — three service levels driven by queue
//!   depth and p99 latency ([`degrade::Controller`]): the full
//!   qgram→freq→CDF→verify pipeline, then filter-only answers flagged
//!   `DEGRADED` (a sound superset of the exact answer, per the q-gram
//!   and frequency-distance lower bounds), then load shedding.
//! - **Deadline propagation** — clients send `deadline_ms=`, the server
//!   enforces it *inside* the probe loop via
//!   [`usj_core::ProbeBudget`] (cooperative cancellation, partial
//!   results refused, `DEADLINE` on the wire).
//! - **Panic isolation** — every admission decision and request line is
//!   handled under `catch_unwind` behind `usj_fault::shield`, so one
//!   poisoned request answers `ERR internal panic: ..` and the listener
//!   survives. Failpoints `serve.accept`, `serve.parse` and
//!   `serve.probe` let the fault suite drive this path deliberately.
//! - **Graceful drain** — `SHUTDOWN` (or
//!   [`server::ServerHandle::shutdown`]) stops admission, lets queued
//!   and in-flight requests finish, and flushes the final stats
//!   snapshot.
//!
//! - **Live observability** — a `METRICS` request renders the shared
//!   [`usj_obs::MetricsRegistry`] (every golden-schema counter/gauge,
//!   per-phase latency summaries, and the per-length-band candidate
//!   funnel) in Prometheus text exposition format; a probe carrying a
//!   client-minted `trace_id=` is answered with an extra `TRACE` line
//!   holding its Chrome trace-event JSON (see [`usj_obs::ChromeTraceRecorder`]).
//!
//! - **Sharded scatter-gather** — [`shard`] binds this same server to
//!   one length band of a [`usj_core::Partition`] (answers remapped to
//!   collection-global ids), and [`coordinator`] fronts a fleet of such
//!   shards behind the unchanged wire protocol: length-filter fan-out
//!   pruning, per-shard deadlines carved from the request budget,
//!   hedged second requests after the observed p99, consecutive-failure
//!   quarantine with half-open recovery, and an explicit partial-result
//!   policy (`DEGRADED shards=<ok>/<total>` supersets, or strict
//!   refusal).
//!
//! - **Warm restarts** — [`server::serve_from_snapshot`] (and the
//!   per-shard [`shard::serve_shard_from_snapshot`]) boot from a
//!   durable on-disk index image through `usj-core`'s four-rung
//!   recovery ladder: a verified or salvaged snapshot answers probes
//!   immediately (`HEALTH` reports `warm=true` plus the snapshot age),
//!   bands that failed salvage are served as `DEGRADED` supersets while
//!   a background rebuild readmits them, and an unrecoverable image
//!   falls back to a cold build that re-writes the snapshot for the
//!   next restart.
//!
//! The [`client`] pairs with it: blocking, one connection per request,
//! capped exponential backoff with deterministic jitter on `BUSY`, and
//! per-attempt deadline recomputation mirrored into socket timeouts.
//!
//! Everything is std-only: no async runtime, no protocol frameworks.

#![warn(missing_docs)]

pub mod client;
pub mod coordinator;
pub mod degrade;
pub mod proto;
pub mod server;
pub mod shard;

pub use client::{Client, ClientConfig, ClientError, HealthReport, ProbeOutcome, ProbeTrace};
pub use coordinator::{coordinate, CoordConfig, CoordinatorHandle, ShardSpec};
pub use degrade::{Controller, DegradeConfig, Level};
pub use proto::{parse_request, Request, Response, ShardState};
pub use server::{serve, serve_from_snapshot, ServeConfig, ServerHandle};
pub use shard::{serve_shard, serve_shard_from_snapshot, shard_partition, shard_snapshot_path};
