//! One shard of a partitioned serving fleet.
//!
//! A shard is the single-node server of [`crate::server`] bound to one
//! length band of a [`Partition`]: it indexes only its slice of the
//! collection (the per-(length, segment) signature structure makes that
//! slice's index fully self-contained) and serves the ordinary wire
//! protocol. The only sharding-visible behaviours are:
//!
//! * hit and candidate ids on the wire are **collection-global** (the
//!   server remaps its dense local ids through the slice's ascending id
//!   list, so per-shard answers merge into the single-node answer by a
//!   plain sorted merge);
//! * admission fires the `shard.accept` failpoint instead of
//!   `serve.accept`, so fault suites can kill one shard's admission
//!   path while a standalone baseline server stays healthy.
//!
//! Everything else — degradation ladder, deadlines, panic isolation,
//! drain — is inherited unchanged, which is the point: shard death and
//! shard overload look exactly like single-node death and overload, and
//! the coordinator ([`crate::coordinator`]) owns the fleet-level story.

use std::io;

use usj_core::{IndexedCollection, JoinConfig, Partition};
use usj_model::{Alphabet, UncertainString};

use crate::server::{serve_with_map, ServeConfig, ServerHandle};

/// The deterministic length-band partition for `strings`: both `usj
/// shard` and `usj coord` invocations recompute it from the same input
/// file and agree on the layout.
pub fn shard_partition(strings: &[UncertainString], n: usize) -> Partition {
    let lens: Vec<usize> = strings.iter().map(|s| s.len()).collect();
    Partition::by_length(&lens, n)
}

/// Builds shard `shard_idx`'s slice of `strings` into its own
/// [`IndexedCollection`] and serves it. Answers carry collection-global
/// ids. Returns `InvalidInput` when `shard_idx` is out of range.
pub fn serve_shard(
    config: JoinConfig,
    alphabet: Alphabet,
    strings: &[UncertainString],
    partition: &Partition,
    shard_idx: usize,
    cfg: ServeConfig,
) -> io::Result<ServerHandle> {
    let Some(slice) = partition.shards.get(shard_idx) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "shard index {shard_idx} out of range for a {}-shard partition",
                partition.len()
            ),
        ));
    };
    let subset: Vec<UncertainString> = slice
        .ids
        .iter()
        .map(|&id| strings[id as usize].clone())
        .collect();
    let coll = IndexedCollection::build(config, alphabet.size(), subset);
    serve_with_map(coll, alphabet, cfg, Some(slice.ids.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_shard_index_is_rejected() {
        let alpha = Alphabet::dna();
        let strings = vec![UncertainString::parse("ACGT", &alpha).unwrap()];
        let partition = shard_partition(&strings, 2);
        let result = serve_shard(
            JoinConfig::new(1, 0.3),
            alpha,
            &strings,
            &partition,
            5,
            ServeConfig::default(),
        );
        match result {
            Err(err) => assert_eq!(err.kind(), io::ErrorKind::InvalidInput),
            Ok(_) => panic!("out-of-range shard index was accepted"),
        }
    }
}
