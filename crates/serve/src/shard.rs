//! One shard of a partitioned serving fleet.
//!
//! A shard is the single-node server of [`crate::server`] bound to one
//! length band of a [`Partition`]: it indexes only its slice of the
//! collection (the per-(length, segment) signature structure makes that
//! slice's index fully self-contained) and serves the ordinary wire
//! protocol. The only sharding-visible behaviours are:
//!
//! * hit and candidate ids on the wire are **collection-global** (the
//!   server remaps its dense local ids through the slice's ascending id
//!   list, so per-shard answers merge into the single-node answer by a
//!   plain sorted merge);
//! * admission fires the `shard.accept` failpoint instead of
//!   `serve.accept`, so fault suites can kill one shard's admission
//!   path while a standalone baseline server stays healthy.
//!
//! Everything else — degradation ladder, deadlines, panic isolation,
//! drain — is inherited unchanged, which is the point: shard death and
//! shard overload look exactly like single-node death and overload, and
//! the coordinator ([`crate::coordinator`]) owns the fleet-level story.

use std::io;
use std::path::{Path, PathBuf};

use usj_core::{IndexedCollection, JoinConfig, Partition, ShardSlice, SnapshotReport};
use usj_model::{Alphabet, UncertainString};

use crate::server::{serve_snapshot_with_map, serve_with_map, ServeConfig, ServerHandle};

/// The deterministic length-band partition for `strings`: both `usj
/// shard` and `usj coord` invocations recompute it from the same input
/// file and agree on the layout.
pub fn shard_partition(strings: &[UncertainString], n: usize) -> Partition {
    let lens: Vec<usize> = strings.iter().map(|s| s.len()).collect();
    Partition::by_length(&lens, n)
}

/// Builds shard `shard_idx`'s slice of `strings` into its own
/// [`IndexedCollection`] and serves it. Answers carry collection-global
/// ids. Returns `InvalidInput` when `shard_idx` is out of range.
pub fn serve_shard(
    config: JoinConfig,
    alphabet: Alphabet,
    strings: &[UncertainString],
    partition: &Partition,
    shard_idx: usize,
    cfg: ServeConfig,
) -> io::Result<ServerHandle> {
    let (slice, subset) = shard_subset(strings, partition, shard_idx)?;
    let coll = IndexedCollection::build(config, alphabet.size(), subset);
    serve_with_map(coll, alphabet, cfg, Some(slice.ids.clone()))
}

/// [`serve_shard`] booting from this shard's own snapshot file (see
/// [`shard_snapshot_path`]): the shard loads its slice through the full
/// recovery ladder and starts answering immediately — warm when the
/// image verifies or salvages, superset-degraded for bands that failed
/// salvage, cold-rebuilt otherwise (re-writing the image for the next
/// restart). The snapshot's fingerprint covers only this shard's slice,
/// so a repartitioned fleet refuses stale images with a diagnosis
/// instead of serving the wrong subset.
pub fn serve_shard_from_snapshot(
    snapshot_path: &Path,
    config: JoinConfig,
    alphabet: Alphabet,
    strings: &[UncertainString],
    partition: &Partition,
    shard_idx: usize,
    cfg: ServeConfig,
) -> io::Result<(ServerHandle, SnapshotReport)> {
    let (slice, subset) = shard_subset(strings, partition, shard_idx)?;
    let path = shard_snapshot_path(snapshot_path, shard_idx);
    serve_snapshot_with_map(&path, config, subset, alphabet, cfg, Some(slice.ids.clone()))
}

/// The per-shard snapshot file derived from the fleet-level base path:
/// `<base>.shard<idx>`. Every shard of a fleet shares one `--snapshot`
/// argument and lands on its own file.
pub fn shard_snapshot_path(base: &Path, shard_idx: usize) -> PathBuf {
    let mut name = base.as_os_str().to_os_string();
    name.push(format!(".shard{shard_idx}"));
    PathBuf::from(name)
}

fn shard_subset<'a>(
    strings: &[UncertainString],
    partition: &'a Partition,
    shard_idx: usize,
) -> io::Result<(&'a ShardSlice, Vec<UncertainString>)> {
    let Some(slice) = partition.shards.get(shard_idx) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "shard index {shard_idx} out of range for a {}-shard partition",
                partition.len()
            ),
        ));
    };
    let subset: Vec<UncertainString> = slice
        .ids
        .iter()
        .map(|&id| strings[id as usize].clone())
        .collect();
    Ok((slice, subset))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_shard_index_is_rejected() {
        let alpha = Alphabet::dna();
        let strings = vec![UncertainString::parse("ACGT", &alpha).unwrap()];
        let partition = shard_partition(&strings, 2);
        let result = serve_shard(
            JoinConfig::new(1, 0.3),
            alpha,
            &strings,
            &partition,
            5,
            ServeConfig::default(),
        );
        match result {
            Err(err) => assert_eq!(err.kind(), io::ErrorKind::InvalidInput),
            Ok(_) => panic!("out-of-range shard index was accepted"),
        }
    }
}
