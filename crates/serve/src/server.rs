//! The threaded TCP server: bounded admission, worker pool, degradation
//! ladder, panic isolation, graceful drain.
//!
//! Thread layout: one accept thread owns the listener and performs
//! admission (push into a bounded queue or reject with `BUSY`); `workers`
//! threads pop connections and serve request lines. Every stage is
//! failpoint-instrumented (`serve.accept` / `serve.parse` / `serve.probe`)
//! so the fault suite can drive injected panics and delays through the
//! full path, and every request outcome is counted into a shared
//! [`CollectingRecorder`] using the golden `usj-obs` schema.

use std::collections::{BTreeSet, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use usj_core::snapshot::{self, SalvageMode};
use usj_core::{IndexedCollection, JoinConfig, LoadRung, ProbeBudget, SearchAbort, SnapshotReport};
use usj_fault::shield;
use usj_model::{Alphabet, UncertainString};
use usj_obs::{
    band_of, ChromeTraceRecorder, CollectingRecorder, Counter, Gauge, MergeRecorder,
    MetricsRegistry, Phase, Recorder,
};

use crate::degrade::{Controller, DegradeConfig, Level};
use crate::proto::{parse_request, Request, Response};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads serving popped connections.
    pub workers: usize,
    /// Admission-queue capacity; a full queue rejects with `BUSY`.
    pub queue_cap: usize,
    /// Socket read/write timeout — a worker must never block forever on
    /// a slow client.
    pub io_timeout: Duration,
    /// Deadline applied to probes that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Backoff hint sent with `BUSY` rejections.
    pub retry_after_ms: u64,
    /// Degradation-ladder thresholds.
    pub degrade: DegradeConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_cap: 16,
            io_timeout: Duration::from_secs(5),
            default_deadline: None,
            retry_after_ms: 50,
            degrade: DegradeConfig::default(),
        }
    }
}

/// State shared by the accept thread, the workers, and the handle.
struct Shared {
    /// The served index. Swapped wholesale (behind the `RwLock`) when
    /// the post-boot rebuild readmits bands that failed snapshot
    /// salvage; probes clone the `Arc` once and search a consistent
    /// index for their whole lifetime.
    coll: RwLock<Arc<IndexedCollection>>,
    /// Length bands admitted in superset mode: their snapshot sections
    /// failed salvage, so their strings are absent from the index and
    /// any probe whose length window touches them is answered
    /// `DEGRADED` until the background rebuild readmits them.
    degraded_bands: Mutex<BTreeSet<usize>>,
    /// Whether this server started warm (from an on-disk snapshot).
    warm: bool,
    /// Age in seconds of the snapshot a warm start loaded.
    snapshot_age_s: Option<u64>,
    alphabet: Alphabet,
    cfg: ServeConfig,
    /// `Some` when this server is one shard of a partitioned fleet:
    /// maps the local collection's dense ids to the global ids of the
    /// full collection (ascending, so the remap is monotone and served
    /// answers stay sorted by global id).
    id_map: Option<Vec<u32>>,
    addr: SocketAddr,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    /// Drain flag: once set, admission stops and workers exit after the
    /// queue empties.
    stop: AtomicBool,
    inflight: AtomicUsize,
    probe_seq: AtomicU32,
    controller: Controller,
    recorder: Mutex<CollectingRecorder>,
    /// Lock-free aggregate behind the `METRICS` exposition: folded once
    /// per finished probe, keyed by the probe's length band.
    registry: MetricsRegistry,
}

/// Handle to a running server. Dropping it does *not* stop the server;
/// call [`ServerHandle::shutdown`] (or send `SHUTDOWN` on the wire and
/// [`ServerHandle::wait`]) for a graceful drain.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Binds, spawns the accept thread and worker pool, and returns
/// immediately. The collection is the single shared index all probes
/// search; `alphabet` parses incoming probe operands.
pub fn serve(
    coll: IndexedCollection,
    alphabet: Alphabet,
    cfg: ServeConfig,
) -> io::Result<ServerHandle> {
    serve_with_map(coll, alphabet, cfg, None)
}

/// Warm-restart entry point: load `snapshot_path` through the recovery
/// ladder ([`usj_core::snapshot::load`], [`SalvageMode::Degraded`]) and
/// start answering immediately. A verified or salvaged image makes the
/// start *warm*; bands whose sections failed salvage are served in
/// superset (`DEGRADED`) mode while a background rebuild readmits them;
/// a missing or unrecoverable image falls back to a cold build (and the
/// refreshed snapshot is re-written in the background). A fingerprint
/// mismatch refuses to start with the diagnosis in the error.
pub fn serve_from_snapshot(
    snapshot_path: &Path,
    config: JoinConfig,
    strings: Vec<UncertainString>,
    alphabet: Alphabet,
    cfg: ServeConfig,
) -> io::Result<(ServerHandle, SnapshotReport)> {
    serve_snapshot_with_map(snapshot_path, config, strings, alphabet, cfg, None)
}

/// [`serve_from_snapshot`] with the shard id map (see [`serve_with_map`]).
pub(crate) fn serve_snapshot_with_map(
    snapshot_path: &Path,
    config: JoinConfig,
    strings: Vec<UncertainString>,
    alphabet: Alphabet,
    cfg: ServeConfig,
    id_map: Option<Vec<u32>>,
) -> io::Result<(ServerHandle, SnapshotReport)> {
    let sigma = alphabet.size();
    let loaded = snapshot::load(snapshot_path, &config, sigma, strings, SalvageMode::Degraded)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let report = loaded.report;
    let handle = serve_boot(
        loaded.collection,
        alphabet,
        cfg,
        id_map,
        Some((snapshot_path.to_path_buf(), report.clone())),
    )?;
    Ok((handle, report))
}

/// [`serve`] with an optional local→global id map: the shard entry point
/// (`crate::shard`) serves a sub-collection whose dense ids must be
/// translated back to collection-global ids on the wire.
pub(crate) fn serve_with_map(
    coll: IndexedCollection,
    alphabet: Alphabet,
    cfg: ServeConfig,
    id_map: Option<Vec<u32>>,
) -> io::Result<ServerHandle> {
    serve_boot(coll, alphabet, cfg, id_map, None)
}

fn serve_boot(
    coll: IndexedCollection,
    alphabet: Alphabet,
    cfg: ServeConfig,
    id_map: Option<Vec<u32>>,
    snapshot: Option<(PathBuf, SnapshotReport)>,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let workers = cfg.workers.max(1);
    let (warm, snapshot_age_s, degraded) = match &snapshot {
        Some((_, report)) => (
            report.warm,
            report.age_seconds,
            report.degraded_bands.iter().copied().collect(),
        ),
        None => (false, None, BTreeSet::new()),
    };
    let shared = Arc::new(Shared {
        controller: Controller::new(cfg.degrade.clone()),
        coll: RwLock::new(Arc::new(coll)),
        degraded_bands: Mutex::new(degraded),
        warm,
        snapshot_age_s,
        alphabet,
        cfg,
        id_map,
        addr,
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        stop: AtomicBool::new(false),
        inflight: AtomicUsize::new(0),
        probe_seq: AtomicU32::new(0),
        recorder: Mutex::new(CollectingRecorder::new()),
        registry: MetricsRegistry::default(),
    });
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("usj-serve-accept".to_string())
            .spawn(move || accept_loop(&shared, listener))?
    };
    let mut worker_threads = (0..workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("usj-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
        })
        .collect::<io::Result<Vec<_>>>()?;
    if let Some((path, report)) = snapshot {
        seed_snapshot_metrics(&shared, &report);
        // Readmission and refresh run off the serving path; probes are
        // being answered (warm or superset) before the build starts.
        let maintenance = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("usj-serve-snapshot".to_string())
                .spawn(move || snapshot_maintenance(&shared, &path, &report))?
        };
        worker_threads.push(maintenance);
    }
    Ok(ServerHandle {
        shared,
        accept: Some(accept),
        workers: worker_threads,
    })
}

/// Seeds the boot-time snapshot outcome into both metric sinks, so the
/// golden-schema counters land in `STATS` and `METRICS` from the first
/// scrape.
fn seed_snapshot_metrics(shared: &Shared, report: &SnapshotReport) {
    let mut boot = CollectingRecorder::new();
    if report.warm {
        boot.counter(Counter::WarmRestarts, 1);
    }
    if report.bands_salvaged > 0 {
        boot.counter(Counter::SnapshotBandsSalvaged, report.bands_salvaged as u64);
    }
    if report.bands_rebuilt > 0 {
        boot.counter(Counter::SnapshotBandsRebuilt, report.bands_rebuilt as u64);
    }
    if report.corruptions_detected > 0 {
        boot.counter(
            Counter::SnapshotCorruptionsDetected,
            report.corruptions_detected,
        );
    }
    if let Some(age) = report.age_seconds {
        boot.gauge(Gauge::SnapshotAgeSeconds, age);
    }
    shared.registry.fold(None, &boot);
    shared.record(|r| r.absorb(boot));
}

/// Post-boot snapshot maintenance: cold-rebuild the full index when any
/// band failed salvage (then swap it in and readmit those bands to
/// exact service), and refresh the on-disk image whenever the load was
/// not already verified — so the *next* restart is warm.
fn snapshot_maintenance(shared: &Shared, path: &Path, report: &SnapshotReport) {
    if !report.degraded_bands.is_empty() {
        let (config, sigma, strings) = {
            let coll = shared.collection();
            (coll.config().clone(), coll.sigma(), coll.strings().to_vec())
        };
        let rebuilt = Arc::new(IndexedCollection::build(config, sigma, strings));
        *shared
            .coll
            .write()
            .unwrap_or_else(PoisonError::into_inner) = rebuilt;
        shared
            .degraded_bands
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        let mut rec = CollectingRecorder::new();
        rec.counter(
            Counter::SnapshotBandsRebuilt,
            report.degraded_bands.len() as u64,
        );
        shared.registry.fold(None, &rec);
        shared.record(|r| r.absorb(rec));
    }
    if report.rung != LoadRung::Verified {
        let coll = shared.collection();
        // Best-effort: a refresh failure (disk full, injected fault)
        // leaves the previous committed image in place — the durable
        // write never exposes a torn file.
        let _ = snapshot::write(path, &coll);
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The live Prometheus text exposition (what `METRICS` returns on
    /// the wire, unescaped).
    pub fn metrics_text(&self) -> String {
        self.shared.registry.render_prometheus()
    }

    /// A live observability snapshot (pretty JSON, golden schema).
    pub fn stats_json(&self) -> String {
        self.shared
            .recorder
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .to_json()
    }

    /// Graceful drain: stop accepting, let workers finish queued and
    /// in-flight requests, join every thread, and return the final
    /// flushed stats snapshot.
    pub fn shutdown(mut self) -> String {
        self.shared.begin_drain();
        self.join_all();
        self.stats_json()
    }

    /// Blocks until a wire-level `SHUTDOWN` (or an earlier
    /// [`ServerHandle::shutdown`]) drains the server, then returns the
    /// final stats snapshot. This is what `usj serve` parks on.
    pub fn wait(mut self) -> String {
        self.join_all();
        self.stats_json()
    }

    fn join_all(&mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Shared {
    fn record<T>(&self, f: impl FnOnce(&mut CollectingRecorder) -> T) -> T {
        // A poisoned recorder lock only means a panic elsewhere while
        // recording; the metrics stay usable.
        let mut r = self.recorder.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut r)
    }

    fn queue_depth(&self) -> usize {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// The current index, cloned out of the swap slot in one statement
    /// so no lock guard outlives the probe.
    fn collection(&self) -> Arc<IndexedCollection> {
        self.coll
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The degraded bands whose length window contains `probe_len`
    /// (candidates within edit distance `k` can differ by at most `k`
    /// in length).
    fn degraded_touch(&self, probe_len: usize, k: usize) -> Vec<usize> {
        self.degraded_bands
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .copied()
            .filter(|band| band.abs_diff(probe_len) <= k)
            .collect()
    }

    fn draining(&self) -> bool {
        // ordering: Acquire — pairs with the Release store in
        // `begin_drain`, so a thread observing the flag also observes
        // everything the draining thread wrote before raising it.
        self.stop.load(Ordering::Acquire)
    }

    /// Translates one local hit id to the collection-global id when this
    /// server is a shard; the identity otherwise.
    fn to_global_id(&self, id: u32) -> u32 {
        match &self.id_map {
            Some(map) => map[id as usize],
            None => id,
        }
    }

    /// Translates a sorted local id list to global ids. The map is
    /// ascending, so the remap is monotone and the output stays sorted —
    /// the coordinator's merge relies on that.
    fn to_global_ids(&self, ids: Vec<u32>) -> Vec<u32> {
        match &self.id_map {
            Some(map) => ids.into_iter().map(|id| map[id as usize]).collect(),
            None => ids,
        }
    }

    fn begin_drain(&self) {
        // ordering: Release — pairs with the Acquire loads in
        // `draining()` on the accept and worker threads.
        self.stop.store(true, Ordering::Release);
        self.queue_cv.notify_all();
        // Unblock the accept() call so the accept thread can observe the
        // flag; the woken connection is dropped unanswered.
        let _ = TcpStream::connect(self.addr);
    }
}

/// Best-effort extraction of a panic payload's message (mirrors the CLI
/// perimeter; injected faults downcast to their Display form).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(fault) = payload.downcast_ref::<usj_fault::InjectedFault>() {
        fault.to_string()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.draining() {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Admission runs inside the panic perimeter: a fault injected at
        // `serve.accept` (or any admission bug) drops one connection,
        // never the listener.
        let admitted =
            shield::shielded(|| catch_unwind(AssertUnwindSafe(|| admit(shared, stream))));
        if admitted.is_err() {
            shared.record(|r| r.counter(Counter::ServePanics, 1));
        }
    }
}

/// Bounded admission: reject with `BUSY` instead of queueing without
/// limit. The rejected client gets a retry-after hint and a closed
/// connection; the admitted one is queued for a worker.
fn admit(shared: &Shared, stream: TcpStream) {
    // Shard and single-node admission are distinct failpoints so the
    // coordinator suites can kill one shard's admission path without
    // also killing the standalone differential baseline.
    let injected = if shared.id_map.is_some() {
        usj_fault::fire("shard.accept")
    } else {
        usj_fault::fire("serve.accept")
    };
    if injected {
        shared.record(|r| r.counter(Counter::FaultsInjected, 1));
    }
    let depth = {
        let queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        queue.len()
    };
    let level = shared.controller.note_queue(depth);
    if depth >= shared.cfg.queue_cap || level == Level::Shed {
        shared.record(|r| r.counter(Counter::ServeShed, 1));
        let mut stream = stream;
        let _ = stream.set_write_timeout(Some(shared.cfg.io_timeout));
        let busy = Response::Busy {
            retry_after_ms: shared.cfg.retry_after_ms,
        };
        let _ = stream.write_all(busy.encode().as_bytes());
        let _ = stream.write_all(b"\n");
        return;
    }
    let depth = {
        let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        queue.push_back(stream);
        queue.len()
    };
    shared.controller.note_queue(depth);
    shared.record(|r| {
        r.counter(Counter::ServeAccepted, 1);
        r.gauge(Gauge::ServeQueueDepth, depth as u64);
    });
    shared.queue_cv.notify_one();
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(stream) = queue.pop_front() {
                    break stream;
                }
                // Drain contract: exit only once the flag is up *and*
                // the queue is empty — queued work always completes.
                if shared.draining() {
                    return;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        };
        // ordering: Relaxed — inflight is reported in HEALTH only; no
        // other memory depends on it.
        shared.inflight.fetch_add(1, Ordering::Relaxed);
        handle_conn(shared, stream);
        shared.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Serves one connection: line in, line out, until EOF, I/O timeout,
/// `BYE`, or drain. Each line is handled inside the panic perimeter.
fn handle_conn(shared: &Shared, stream: TcpStream) {
    // A worker must never block forever on a slow client: both
    // directions are capped before the first read.
    if stream
        .set_read_timeout(Some(shared.cfg.io_timeout))
        .is_err()
    {
        return;
    }
    let _ = stream.set_write_timeout(Some(shared.cfg.io_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {}
            Err(_) => return, // timed out or reset: drop the connection
        }
        if line.trim().is_empty() {
            continue;
        }
        let outcome =
            shield::shielded(|| catch_unwind(AssertUnwindSafe(|| handle_line(shared, &line))));
        let responses = outcome.unwrap_or_else(|payload| {
            // One poisoned request gets ERR; the worker (and listener)
            // survive to serve the next one.
            shared.record(|r| r.counter(Counter::ServePanics, 1));
            vec![Response::Err(format!(
                "internal panic: {}",
                panic_message(&*payload)
            ))]
        });
        let done = responses.iter().any(|r| matches!(r, Response::Bye));
        for response in responses {
            if writer.write_all(response.encode().as_bytes()).is_err() {
                return;
            }
            if writer.write_all(b"\n").is_err() {
                return;
            }
        }
        let _ = writer.flush();
        // Draining: answer the current request, then close so the worker
        // can exit instead of idling on a held-open connection.
        if done || shared.draining() {
            return;
        }
    }
}

/// Handles one request line. Most requests yield one response line; a
/// traced probe yields its `TRACE` line followed by the result.
fn handle_line(shared: &Shared, line: &str) -> Vec<Response> {
    if usj_fault::fire("serve.parse") {
        shared.record(|r| r.counter(Counter::FaultsInjected, 1));
    }
    let request = match parse_request(line) {
        Ok(request) => request,
        Err(msg) => return vec![Response::Err(msg)],
    };
    match request {
        Request::Health => vec![Response::Health {
            level: shared.controller.level() as u8,
            queue: shared.queue_depth(),
            // ordering: Relaxed — monitoring read, see worker_loop.
            inflight: shared.inflight.load(Ordering::Relaxed),
            warm: Some(shared.warm),
            snapshot_age_s: shared.snapshot_age_s,
        }],
        Request::Stats => {
            let json = shared.record(|r| r.to_json());
            vec![Response::Stats(compact_json(&json))]
        }
        Request::Metrics => vec![Response::Metrics(shared.registry.render_prometheus())],
        // A single server (or one shard) fronts no fleet; only the
        // coordinator answers with per-shard states.
        Request::Shards => vec![Response::Shards(Vec::new())],
        Request::Shutdown => {
            shared.begin_drain();
            vec![Response::Bye]
        }
        Request::Probe {
            k,
            tau,
            deadline_ms,
            trace_id,
            text,
        } => handle_probe(shared, k, tau, deadline_ms, trace_id, &text),
    }
}

fn handle_probe(
    shared: &Shared,
    k: usize,
    tau: f64,
    deadline_ms: Option<u64>,
    trace_id: Option<u64>,
    text: &str,
) -> Vec<Response> {
    let started = Instant::now();
    if usj_fault::fire("serve.probe") {
        shared.record(|r| r.counter(Counter::FaultsInjected, 1));
    }
    // One Arc clone up front: the probe searches a consistent index even
    // if the snapshot-maintenance thread swaps the slot mid-request.
    let coll = shared.collection();
    // The index is built for one (k, τ): segment partitioning depends on
    // k, filter thresholds on τ. Serving a different pair would be
    // silently wrong, so it is an explicit protocol error instead.
    let config = coll.config();
    if k != config.k || (tau - config.tau).abs() > 1e-9 {
        return vec![Response::Err(format!(
            "this server is indexed for k={} tau={} (got k={k} tau={tau})",
            config.k, config.tau
        ))];
    }
    let probe = match UncertainString::parse(text, &shared.alphabet) {
        Ok(probe) => probe,
        Err(e) => return vec![Response::Err(format!("bad probe: {e}"))],
    };
    let deadline = deadline_ms
        .map(Duration::from_millis)
        .or(shared.cfg.default_deadline);
    // ordering: Relaxed — the id is only a label in the event stream.
    let probe_id = shared.probe_seq.fetch_add(1, Ordering::Relaxed);
    // Untraced probes pair the collector with a silent Chrome recorder,
    // so the hot path pays only a few branch checks for tracing.
    let chrome = match trace_id {
        Some(_) => ChromeTraceRecorder::new(),
        None => ChromeTraceRecorder::silent(),
    };
    let mut local = (CollectingRecorder::new(), chrome);
    if let Some(id) = trace_id {
        local.set_trace_id(id);
    }
    // Bands admitted in superset mode after a failed snapshot salvage:
    // their strings are absent from the index, so any probe whose
    // length window touches one cannot be answered exactly until the
    // background rebuild readmits them.
    let touched = shared.degraded_touch(probe.len(), config.k);
    let level = shared.controller.level();
    let response = if level == Level::Shed {
        local.counter(Counter::ServeShed, 1);
        Response::Busy {
            retry_after_ms: shared.cfg.retry_after_ms,
        }
    } else if level == Level::Degraded || !touched.is_empty() {
        {
            // Filter-only answer: q-gram + frequency-distance lower
            // bounds never prune a true match, so the candidate list is
            // a sound superset of the exact answer — served at a
            // fraction of the cost and flagged on the wire. Bands still
            // missing from a salvaged index contribute *all* their ids
            // (their strings are unindexed, so the filters cannot speak
            // for them; including everything keeps the superset sound).
            local.probe_start(probe_id);
            let mut ids = coll.filter_candidates(&probe);
            if !touched.is_empty() {
                for (id, s) in coll.strings().iter().enumerate() {
                    if touched.contains(&s.len()) {
                        ids.push(id as u32);
                    }
                }
                ids.sort_unstable();
                ids.dedup();
            }
            local.counter(Counter::ServeDegraded, 1);
            local.enter_phase(Phase::Total);
            local.exit_phase(Phase::Total, started.elapsed());
            local.probe_end(probe_id);
            Response::Degraded {
                ids: shared.to_global_ids(ids),
                shards: None,
            }
        }
    } else {
        {
            let budget = ProbeBudget {
                deadline: deadline.and_then(|d| started.checked_add(d)),
                cancel: None,
            };
            match coll.search_budgeted_recorded(
                probe_id,
                &probe,
                |_| true,
                budget,
                &mut local,
            ) {
                Ok((hits, _stats)) => {
                    local.counter(Counter::ServeFull, 1);
                    Response::Ok(
                        hits.into_iter()
                            .map(|h| (shared.to_global_id(h.id), h.prob))
                            .collect(),
                    )
                }
                Err(SearchAbort::Deadline { elapsed }) => {
                    local.counter(Counter::ServeDeadline, 1);
                    // The abort reports time inside the search; the wire
                    // reports the whole request (parse + queue-side stalls
                    // count against the budget too).
                    let total = started.elapsed().max(elapsed);
                    Response::Deadline {
                        elapsed_ms: total.as_millis().min(u64::MAX as u128) as u64,
                    }
                }
                Err(SearchAbort::Cancelled) => {
                    local.counter(Counter::ServeDeadline, 1);
                    Response::Err("probe cancelled".to_string())
                }
            }
        }
    };
    let (collected, chrome) = local;
    // Funnel exposition buckets this probe's counters by its length band.
    shared
        .registry
        .fold(Some(band_of(probe.len())), &collected);
    shared.record(|r| r.absorb(collected));
    shared
        .controller
        .observe(started.elapsed(), shared.queue_depth());
    let mut out = Vec::with_capacity(2);
    if let (Some(id), Some(json)) = (trace_id, chrome.finish()) {
        out.push(Response::Trace { trace_id: id, json });
    }
    out.push(response);
    out
}

/// Flattens the pretty-printed golden-schema JSON to one protocol line.
/// No string value in the schema contains a newline, so stripping
/// newlines plus indentation preserves validity.
fn compact_json(json: &str) -> String {
    json.lines().map(str::trim_start).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_json_is_single_line_and_balanced() {
        let json = "{\n  \"a\": 1,\n  \"b\": {\n    \"c\": [1, 2]\n  }\n}\n";
        let flat = compact_json(json);
        assert!(!flat.contains('\n'));
        assert_eq!(flat, "{\"a\": 1,\"b\": {\"c\": [1, 2]}}");
        assert_eq!(
            flat.matches('{').count(),
            flat.matches('}').count(),
            "braces stay balanced"
        );
    }
}
