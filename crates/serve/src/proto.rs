//! Line protocol for the query service.
//!
//! Requests and responses are single UTF-8 lines, so the protocol can be
//! driven by `nc` and inspected in logs. Hit probabilities travel as
//! 16-digit hex `f64` bit patterns — the same convention as the
//! checkpoint format — so a served result is bit-identical to a local
//! [`usj_core::IndexedCollection::search`], never a decimal
//! approximation.
//!
//! ```text
//! -> PROBE <k> <tau> [deadline_ms=<n>] [trace_id=<16-hex>] <uncertain-string>
//! <- TRACE <16-hex> <chrome-trace-json>   only for traced probes, before the answer
//! <- OK <n> <id>:<prob-bits> ...          exact answer
//! <- DEGRADED [shards=<ok>/<total>] <n> <id> ...   superset answer
//! <- BUSY retry_after_ms=<n>              shed; retry after the hint
//! <- DEADLINE elapsed_ms=<n>              per-request deadline expired
//! -> HEALTH                               -> HEALTH level=.. queue=.. inflight=..
//! -> STATS                                -> STATS <one-line obs JSON>
//! -> METRICS                              -> METRICS <escaped Prometheus text>
//! -> SHARDS                               -> SHARDS <n> <idx>:<state> ...
//! -> SHUTDOWN                             -> BYE (starts graceful drain)
//! <- ERR <message>                        any malformed/failed request
//! ```
//!
//! `DEGRADED` is one verb with two provenances sharing the superset
//! contract: a single server under load answers filter-only candidates
//! (no `shards=` marker), while a coordinator that lost shards marks how
//! much of the fleet answered (`shards=<ok>/<total>`) — the ids are then
//! the union of what the surviving shards returned. `SHARDS` is answered
//! by the coordinator with each shard's health-machine state
//! (`healthy` / `quarantined` / `half_open`); a plain single-node server
//! answers `SHARDS 0` (it fronts no fleet).
//!
//! The uncertain-string operand is the *remainder* of the line (it may
//! contain spaces: `jo{(h,0.7),(n,0.3)}n doe`), so options precede it.
//!
//! A probe carrying a nonzero `trace_id` (client-minted, 16 hex digits)
//! is answered with an extra `TRACE` line *before* its result line: the
//! echoed trace id plus the server-side Chrome trace-event JSON for that
//! request (already single-line). The Prometheus exposition in `METRICS`
//! is multi-line text; on the wire each backslash becomes `\\` and each
//! newline `\n`, and [`Response::parse`] undoes the escaping.

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A (k, τ)-similarity probe against the served collection.
    Probe {
        /// Edit-distance threshold; must match the serving index.
        k: usize,
        /// Probability threshold; must match the serving index.
        tau: f64,
        /// Per-request deadline in milliseconds, if the client set one.
        deadline_ms: Option<u64>,
        /// Client-minted trace id (nonzero) requesting a `TRACE` line.
        trace_id: Option<u64>,
        /// Uncertain-string text (unparsed; the worker owns the alphabet).
        text: String,
    },
    /// Liveness + degradation-level probe.
    Health,
    /// Full observability snapshot as one-line JSON.
    Stats,
    /// Prometheus text exposition of the live metrics registry.
    Metrics,
    /// Per-shard health states (coordinator topology introspection).
    Shards,
    /// Begin graceful drain: stop accepting, finish in-flight, flush.
    Shutdown,
}

/// One shard's position in the coordinator's health state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Serving traffic normally.
    Healthy,
    /// Benched after consecutive failures; not probed until the
    /// cooldown elapses.
    Quarantined,
    /// Cooldown elapsed: the next relevant probe is a recovery trial.
    HalfOpen,
}

impl ShardState {
    /// Wire token for the state.
    pub fn as_str(self) -> &'static str {
        match self {
            ShardState::Healthy => "healthy",
            ShardState::Quarantined => "quarantined",
            ShardState::HalfOpen => "half_open",
        }
    }

    /// Parses a wire token.
    pub fn parse(tok: &str) -> Result<ShardState, String> {
        match tok {
            "healthy" => Ok(ShardState::Healthy),
            "quarantined" => Ok(ShardState::Quarantined),
            "half_open" => Ok(ShardState::HalfOpen),
            other => Err(format!("unknown shard state {other:?}")),
        }
    }
}

/// Splits the first whitespace-delimited token off `s` (which must be
/// left-trimmed), returning `(token, rest)`.
fn split_token(s: &str) -> (&str, &str) {
    match s.find(char::is_whitespace) {
        Some(at) => (&s[..at], s[at..].trim_start()),
        None => (s, ""),
    }
}

/// Parses one request line. Errors are protocol-level messages sent back
/// verbatim in an `ERR` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = split_token(line);
    match verb {
        "PROBE" => {
            let (k_tok, rest) = split_token(rest);
            let k: usize = k_tok
                .parse()
                .map_err(|_| format!("bad k {k_tok:?} (expected a non-negative integer)"))?;
            let (tau_tok, rest) = split_token(rest);
            let tau: f64 = tau_tok
                .parse()
                .map_err(|_| format!("bad tau {tau_tok:?} (expected a number in [0, 1))"))?;
            if !(0.0..1.0).contains(&tau) {
                return Err(format!("tau {tau} out of range [0, 1)"));
            }
            let mut deadline_ms = None;
            let mut trace_id = None;
            let mut rest = rest;
            loop {
                let (tok, tail) = split_token(rest);
                if let Some(value) = tok.strip_prefix("deadline_ms=") {
                    deadline_ms = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("bad deadline_ms {value:?}"))?,
                    );
                } else if let Some(value) = tok.strip_prefix("trace_id=") {
                    let id = u64::from_str_radix(value, 16)
                        .map_err(|_| format!("bad trace_id {value:?} (expected hex)"))?;
                    if id == 0 {
                        return Err("trace_id must be nonzero".to_string());
                    }
                    trace_id = Some(id);
                } else {
                    break;
                }
                rest = tail;
            }
            if rest.is_empty() {
                return Err("PROBE needs an uncertain-string operand".to_string());
            }
            Ok(Request::Probe {
                k,
                tau,
                deadline_ms,
                trace_id,
                text: rest.to_string(),
            })
        }
        "HEALTH" => Ok(Request::Health),
        "STATS" => Ok(Request::Stats),
        "METRICS" => Ok(Request::Metrics),
        "SHARDS" => Ok(Request::Shards),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "" => Err("empty request".to_string()),
        other => Err(format!(
            "unknown verb {other:?} (expected PROBE/HEALTH/STATS/METRICS/SHARDS/SHUTDOWN)"
        )),
    }
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Exact answer: `(id, Pr(ed ≤ k))` per hit, ascending by id.
    Ok(Vec<(u32, f64)>),
    /// Degraded answer: candidate ids forming a sound superset of the
    /// exact hit ids, ascending.
    Degraded {
        /// The superset candidate ids.
        ids: Vec<u32>,
        /// `Some((answered, total))` when a coordinator served from a
        /// subset of its fleet; `None` for a single server's filter-only
        /// degradation.
        shards: Option<(u32, u32)>,
    },
    /// Shed: retry after the hinted backoff.
    Busy {
        /// Suggested client backoff before retrying.
        retry_after_ms: u64,
    },
    /// The per-request deadline expired mid-probe; no partial results.
    Deadline {
        /// Time spent before the probe was abandoned.
        elapsed_ms: u64,
    },
    /// Liveness report.
    Health {
        /// Current degradation-ladder level (0 full, 1 degraded, 2 shed).
        level: u8,
        /// Current admission-queue depth.
        queue: usize,
        /// Requests currently being processed by workers.
        inflight: usize,
        /// Whether this server started warm (from an on-disk snapshot);
        /// `None` from peers that predate the field (its wire token is
        /// simply absent, which old parsers already skip).
        warm: Option<bool>,
        /// Age in seconds of the snapshot a warm server started from.
        snapshot_age_s: Option<u64>,
    },
    /// One-line observability snapshot JSON.
    Stats(String),
    /// Prometheus text exposition (multi-line; escaped on the wire).
    Metrics(String),
    /// Per-shard health states, in shard-index order.
    Shards(Vec<ShardState>),
    /// Chrome trace-event JSON for one traced probe, echoing the
    /// client-minted trace id; sent before the probe's result line.
    Trace {
        /// The trace id the client attached to the probe.
        trace_id: u64,
        /// Single-line Chrome trace-event JSON (`{"traceEvents":[...]}`).
        json: String,
    },
    /// Graceful-drain acknowledgement.
    Bye,
    /// Request-level failure (parse error, isolated panic, bad probe).
    Err(String),
}

/// Escapes multi-line payloads onto one protocol line: `\` → `\\`,
/// newline → `\n`.
fn escape_line(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_line`]. A trailing lone backslash is an error.
fn unescape_line(text: &str) -> Result<String, String> {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            other => return Err(format!("bad escape \\{other:?}")),
        }
    }
    Ok(out)
}

impl Response {
    /// Encodes the response as one protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Response::Ok(hits) => {
                let mut out = format!("OK {}", hits.len());
                for (id, prob) in hits {
                    out.push_str(&format!(" {id}:{:016x}", prob.to_bits()));
                }
                out
            }
            Response::Degraded { ids, shards } => {
                let mut out = String::from("DEGRADED");
                if let Some((ok, total)) = shards {
                    out.push_str(&format!(" shards={ok}/{total}"));
                }
                out.push_str(&format!(" {}", ids.len()));
                for id in ids {
                    out.push_str(&format!(" {id}"));
                }
                out
            }
            Response::Busy { retry_after_ms } => format!("BUSY retry_after_ms={retry_after_ms}"),
            Response::Deadline { elapsed_ms } => format!("DEADLINE elapsed_ms={elapsed_ms}"),
            Response::Health {
                level,
                queue,
                inflight,
                warm,
                snapshot_age_s,
            } => {
                let mut out = format!("HEALTH level={level} queue={queue} inflight={inflight}");
                if let Some(warm) = warm {
                    out.push_str(&format!(" warm={warm}"));
                }
                if let Some(age) = snapshot_age_s {
                    out.push_str(&format!(" snapshot_age_s={age}"));
                }
                out
            }
            Response::Stats(json) => format!("STATS {json}"),
            Response::Metrics(text) => format!("METRICS {}", escape_line(text)),
            Response::Shards(states) => {
                let mut out = format!("SHARDS {}", states.len());
                for (idx, state) in states.iter().enumerate() {
                    out.push_str(&format!(" {idx}:{}", state.as_str()));
                }
                out
            }
            Response::Trace { trace_id, json } => {
                format!("TRACE {trace_id:016x} {}", json.replace('\n', " "))
            }
            Response::Bye => "BYE".to_string(),
            Response::Err(msg) => format!("ERR {}", msg.replace('\n', " ")),
        }
    }

    /// Parses one response line (the client half of the protocol).
    pub fn parse(line: &str) -> Result<Response, String> {
        let line = line.trim();
        let (verb, rest) = split_token(line);
        let count = |rest: &str| -> Result<(usize, String), String> {
            let (n_tok, tail) = split_token(rest);
            let n = n_tok
                .parse::<usize>()
                .map_err(|_| format!("bad count {n_tok:?}"))?;
            Ok((n, tail.to_string()))
        };
        match verb {
            "OK" => {
                let (n, tail) = count(rest)?;
                let mut hits = Vec::with_capacity(n);
                for tok in tail.split_whitespace() {
                    let (id, bits) = tok
                        .split_once(':')
                        .ok_or_else(|| format!("bad hit {tok:?}"))?;
                    let id: u32 = id.parse().map_err(|_| format!("bad hit id {id:?}"))?;
                    let bits = u64::from_str_radix(bits, 16)
                        .map_err(|_| format!("bad probability bits {bits:?}"))?;
                    hits.push((id, f64::from_bits(bits)));
                }
                if hits.len() != n {
                    return Err(format!("OK count {n} but {} hits", hits.len()));
                }
                Ok(Response::Ok(hits))
            }
            "DEGRADED" => {
                let (first, after) = split_token(rest);
                let (shards, rest) = match first.strip_prefix("shards=") {
                    Some(frac) => {
                        let (ok, total) = frac
                            .split_once('/')
                            .ok_or_else(|| format!("bad shards marker {first:?}"))?;
                        let ok: u32 =
                            ok.parse().map_err(|_| format!("bad shards marker {first:?}"))?;
                        let total: u32 = total
                            .parse()
                            .map_err(|_| format!("bad shards marker {first:?}"))?;
                        if ok > total || total == 0 {
                            return Err(format!("bad shards marker {first:?}"));
                        }
                        (Some((ok, total)), after)
                    }
                    None => (None, rest),
                };
                let (n, tail) = count(rest)?;
                let ids: Vec<u32> = tail
                    .split_whitespace()
                    .map(|tok| tok.parse().map_err(|_| format!("bad candidate id {tok:?}")))
                    .collect::<Result<_, _>>()?;
                if ids.len() != n {
                    return Err(format!("DEGRADED count {n} but {} ids", ids.len()));
                }
                Ok(Response::Degraded { ids, shards })
            }
            "BUSY" => {
                let ms = rest
                    .strip_prefix("retry_after_ms=")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("bad BUSY line {line:?}"))?;
                Ok(Response::Busy { retry_after_ms: ms })
            }
            "DEADLINE" => {
                let ms = rest
                    .strip_prefix("elapsed_ms=")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("bad DEADLINE line {line:?}"))?;
                Ok(Response::Deadline { elapsed_ms: ms })
            }
            "HEALTH" => {
                let mut level = None;
                let mut queue = None;
                let mut inflight = None;
                let mut warm = None;
                let mut snapshot_age_s = None;
                for tok in rest.split_whitespace() {
                    if let Some(v) = tok.strip_prefix("level=") {
                        level = v.parse().ok();
                    } else if let Some(v) = tok.strip_prefix("queue=") {
                        queue = v.parse().ok();
                    } else if let Some(v) = tok.strip_prefix("inflight=") {
                        inflight = v.parse().ok();
                    } else if let Some(v) = tok.strip_prefix("warm=") {
                        warm = v.parse().ok();
                    } else if let Some(v) = tok.strip_prefix("snapshot_age_s=") {
                        snapshot_age_s = v.parse().ok();
                    }
                }
                match (level, queue, inflight) {
                    (Some(level), Some(queue), Some(inflight)) => Ok(Response::Health {
                        level,
                        queue,
                        inflight,
                        warm,
                        snapshot_age_s,
                    }),
                    _ => Err(format!("bad HEALTH line {line:?}")),
                }
            }
            "STATS" => Ok(Response::Stats(rest.to_string())),
            "METRICS" => Ok(Response::Metrics(unescape_line(rest)?)),
            "SHARDS" => {
                let (n, tail) = count(rest)?;
                let mut states = Vec::with_capacity(n);
                for tok in tail.split_whitespace() {
                    let (idx, state) = tok
                        .split_once(':')
                        .ok_or_else(|| format!("bad shard entry {tok:?}"))?;
                    let idx: usize =
                        idx.parse().map_err(|_| format!("bad shard index {idx:?}"))?;
                    if idx != states.len() {
                        return Err(format!("shard entries out of order at {tok:?}"));
                    }
                    states.push(ShardState::parse(state)?);
                }
                if states.len() != n {
                    return Err(format!("SHARDS count {n} but {} entries", states.len()));
                }
                Ok(Response::Shards(states))
            }
            "TRACE" => {
                let (id_tok, json) = split_token(rest);
                let trace_id = u64::from_str_radix(id_tok, 16)
                    .map_err(|_| format!("bad trace id {id_tok:?}"))?;
                Ok(Response::Trace {
                    trace_id,
                    json: json.to_string(),
                })
            }
            "BYE" => Ok(Response::Bye),
            "ERR" => Ok(Response::Err(rest.to_string())),
            other => Err(format!("unknown response verb {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_requests_parse_with_options_and_spaces() {
        assert_eq!(
            parse_request("PROBE 2 0.3 ACGT").unwrap(),
            Request::Probe {
                k: 2,
                tau: 0.3,
                deadline_ms: None,
                trace_id: None,
                text: "ACGT".to_string(),
            }
        );
        assert_eq!(
            parse_request("PROBE 1 0.5 deadline_ms=250 jo{(h,0.7),(n,0.3)}n doe").unwrap(),
            Request::Probe {
                k: 1,
                tau: 0.5,
                deadline_ms: Some(250),
                trace_id: None,
                text: "jo{(h,0.7),(n,0.3)}n doe".to_string(),
            }
        );
        // Options compose in either order; trace ids are 16-hex.
        assert_eq!(
            parse_request("PROBE 1 0.5 trace_id=00ab0cd0ef012345 deadline_ms=9 ACGT").unwrap(),
            Request::Probe {
                k: 1,
                tau: 0.5,
                deadline_ms: Some(9),
                trace_id: Some(0x00ab_0cd0_ef01_2345),
                text: "ACGT".to_string(),
            }
        );
    }

    #[test]
    fn metrics_request_parses() {
        assert_eq!(parse_request("METRICS").unwrap(), Request::Metrics);
        assert_eq!(parse_request("  METRICS  ").unwrap(), Request::Metrics);
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, fragment) in [
            ("PROBE x 0.3 ACGT", "bad k"),
            ("PROBE 1 nope ACGT", "bad tau"),
            ("PROBE 1 1.5 ACGT", "out of range"),
            ("PROBE 1 0.3 deadline_ms=abc ACGT", "bad deadline_ms"),
            ("PROBE 1 0.3 trace_id=zzzz ACGT", "bad trace_id"),
            ("PROBE 1 0.3 trace_id=0 ACGT", "trace_id must be nonzero"),
            ("PROBE 1 0.3", "needs an uncertain-string"),
            ("PROBE 1 0.3 deadline_ms=5", "needs an uncertain-string"),
            ("PROBE 1 0.3 trace_id=1f", "needs an uncertain-string"),
            ("FROBNICATE", "unknown verb"),
            ("", "empty request"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(fragment), "{line:?} -> {err:?}");
        }
    }

    #[test]
    fn responses_roundtrip_bit_exactly() {
        let cases = [
            Response::Ok(vec![(3, 0.75), (9, 0.5000000001)]),
            Response::Ok(Vec::new()),
            Response::Degraded {
                ids: vec![1, 2, 8],
                shards: None,
            },
            Response::Degraded {
                ids: vec![0, 7],
                shards: Some((2, 3)),
            },
            Response::Degraded {
                ids: Vec::new(),
                shards: Some((1, 1)),
            },
            Response::Shards(vec![
                ShardState::Healthy,
                ShardState::Quarantined,
                ShardState::HalfOpen,
            ]),
            Response::Shards(Vec::new()),
            Response::Busy { retry_after_ms: 40 },
            Response::Deadline { elapsed_ms: 17 },
            Response::Health {
                level: 1,
                queue: 4,
                inflight: 2,
                warm: None,
                snapshot_age_s: None,
            },
            Response::Health {
                level: 0,
                queue: 0,
                inflight: 1,
                warm: Some(true),
                snapshot_age_s: Some(77),
            },
            Response::Health {
                level: 0,
                queue: 0,
                inflight: 0,
                warm: Some(false),
                snapshot_age_s: None,
            },
            Response::Stats("{\"probes\":3}".to_string()),
            Response::Metrics("# TYPE usj_probes_total counter\nusj_probes_total 3\n".to_string()),
            Response::Metrics("label=\"a\\b\"\n".to_string()),
            Response::Trace {
                trace_id: 0x00ab_cdef_0123_4567,
                json: "{\"traceEvents\":[]}".to_string(),
            },
            Response::Bye,
            Response::Err("bad probe".to_string()),
        ];
        for resp in cases {
            let line = resp.encode();
            assert!(!line.contains('\n'));
            let parsed = Response::parse(&line).unwrap();
            if let (Response::Ok(a), Response::Ok(b)) = (&resp, &parsed) {
                for ((ia, pa), (ib, pb)) in a.iter().zip(b) {
                    assert_eq!(ia, ib);
                    assert_eq!(pa.to_bits(), pb.to_bits(), "bit-exact probabilities");
                }
            }
            assert_eq!(parsed, resp, "{line:?}");
        }
    }

    #[test]
    fn count_mismatch_is_a_protocol_error() {
        assert!(Response::parse("OK 2 1:3fe8000000000000").is_err());
        assert!(Response::parse("DEGRADED 1").is_err());
        assert!(Response::parse("DEGRADED shards=1/3 2 5").is_err());
        assert!(Response::parse("SHARDS 2 0:healthy").is_err());
    }

    #[test]
    fn shards_request_parses() {
        assert_eq!(parse_request("SHARDS").unwrap(), Request::Shards);
        assert_eq!(parse_request("  SHARDS ").unwrap(), Request::Shards);
    }

    #[test]
    fn degraded_shard_markers_are_validated() {
        // Wire form places the marker between verb and count.
        assert_eq!(
            Response::Degraded {
                ids: vec![4],
                shards: Some((1, 2)),
            }
            .encode(),
            "DEGRADED shards=1/2 1 4"
        );
        for bad in [
            "DEGRADED shards=3 1 4",    // no slash
            "DEGRADED shards=a/b 1 4",  // not numeric
            "DEGRADED shards=3/2 1 4",  // answered > total
            "DEGRADED shards=0/0 1 4",  // empty fleet cannot answer
        ] {
            let err = Response::parse(bad).unwrap_err();
            assert!(err.contains("bad shards marker"), "{bad:?} -> {err:?}");
        }
    }

    #[test]
    fn shard_state_lines_are_validated() {
        assert_eq!(
            Response::parse("SHARDS 2 0:healthy 1:half_open").unwrap(),
            Response::Shards(vec![ShardState::Healthy, ShardState::HalfOpen])
        );
        assert!(Response::parse("SHARDS 1 0:sleepy").is_err());
        assert!(Response::parse("SHARDS 1 zero:healthy").is_err());
        assert!(Response::parse("SHARDS 2 1:healthy 0:healthy").is_err());
    }

    #[test]
    fn metrics_escaping_is_lossless_and_single_line() {
        let text = "a\nb\\c\nd\\\\e\n";
        let line = Response::Metrics(text.to_string()).encode();
        assert!(!line.contains('\n'));
        assert_eq!(
            Response::parse(&line).unwrap(),
            Response::Metrics(text.to_string())
        );
        // A dangling escape is a protocol error, not silent truncation.
        assert!(Response::parse("METRICS trailing\\").is_err());
        assert!(Response::parse("TRACE nothex {}").is_err());
    }
}
