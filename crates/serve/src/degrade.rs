//! The three-level degradation ladder.
//!
//! Overload is answered in stages rather than by falling over:
//!
//! | level | name | behaviour |
//! |-------|------|-----------|
//! | 0 | Full | complete q-gram → frequency → CDF → verification pipeline |
//! | 1 | Degraded | filter-only answers (q-gram + frequency-distance lower bounds), flagged `DEGRADED` — a sound superset of the exact answer at a fraction of the cost |
//! | 2 | Shed | reject with `BUSY` + retry-after hint |
//!
//! The controller climbs on *either* pressure signal — admission-queue
//! depth or p99 service latency over a sliding window — and recomputes
//! from current readings on every observation, so the ladder descends
//! again once pressure clears.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// One rung of the ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Full exact pipeline.
    Full = 0,
    /// Filter-only answers, flagged `DEGRADED`.
    Degraded = 1,
    /// Reject new work with `BUSY`.
    Shed = 2,
}

impl Level {
    /// Decodes a stored level (saturating: unknown values shed).
    pub fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Full,
            1 => Level::Degraded,
            _ => Level::Shed,
        }
    }
}

/// Thresholds driving the ladder.
#[derive(Debug, Clone)]
pub struct DegradeConfig {
    /// Queue depth at which answers degrade to filter-only.
    pub queue_degrade: usize,
    /// Queue depth at which new work is shed.
    pub queue_shed: usize,
    /// p99 service latency at which answers degrade.
    pub p99_degrade: Duration,
    /// p99 service latency at which new work is shed.
    pub p99_shed: Duration,
    /// Sliding-window size (completed requests) for the p99 estimate.
    pub window: usize,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            queue_degrade: 4,
            queue_shed: 16,
            p99_degrade: Duration::from_millis(250),
            p99_shed: Duration::from_secs(2),
            window: 64,
        }
    }
}

/// Shared ladder state. All methods take `&self`; the level itself is an
/// atomic so admission can read it without the latency lock.
#[derive(Debug)]
pub struct Controller {
    cfg: DegradeConfig,
    /// Current level as `u8`.
    level: AtomicU8,
    /// Ring of recent service latencies (nanoseconds).
    window: Mutex<LatencyRing>,
}

#[derive(Debug)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl Controller {
    /// A controller starting at [`Level::Full`].
    pub fn new(cfg: DegradeConfig) -> Controller {
        let cap = cfg.window.max(1);
        Controller {
            cfg,
            level: AtomicU8::new(Level::Full as u8),
            window: Mutex::new(LatencyRing {
                samples: Vec::with_capacity(cap),
                next: 0,
            }),
        }
    }

    /// The level admission and probe handling act on right now.
    pub fn level(&self) -> Level {
        // ordering: Relaxed — the level is an advisory snapshot; a
        // stale read only means one request is served at the previous
        // rung, which the ladder tolerates by design.
        Level::from_u8(self.level.load(Ordering::Relaxed))
    }

    /// Records a completed request's service latency and re-evaluates
    /// the ladder against the current queue depth. Returns the new level.
    pub fn observe(&self, latency: Duration, queue_depth: usize) -> Level {
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        let p99 = {
            // A poisoned lock only means another worker panicked while
            // recording a sample; the ring stays usable.
            let mut ring = self.window.lock().unwrap_or_else(PoisonError::into_inner);
            if ring.samples.len() < self.cfg.window.max(1) {
                ring.samples.push(ns);
            } else {
                let at = ring.next;
                ring.samples[at] = ns;
                ring.next = (at + 1) % ring.samples.len();
            }
            percentile_99(&ring.samples)
        };
        self.reassess(queue_depth, p99)
    }

    /// Re-evaluates the ladder from the queue depth alone (used at
    /// admission, where no latency sample is available yet).
    pub fn note_queue(&self, queue_depth: usize) -> Level {
        let p99 = {
            let ring = self.window.lock().unwrap_or_else(PoisonError::into_inner);
            percentile_99(&ring.samples)
        };
        self.reassess(queue_depth, p99)
    }

    fn reassess(&self, queue_depth: usize, p99_ns: u64) -> Level {
        let p99 = Duration::from_nanos(p99_ns);
        let level = if queue_depth >= self.cfg.queue_shed || p99 >= self.cfg.p99_shed {
            Level::Shed
        } else if queue_depth >= self.cfg.queue_degrade || p99 >= self.cfg.p99_degrade {
            Level::Degraded
        } else {
            Level::Full
        };
        // ordering: Relaxed — see `level()`; the write needs no
        // synchronisation beyond eventual visibility.
        self.level.store(level as u8, Ordering::Relaxed);
        level
    }
}

/// p99 over a small sample set (exact nearest-rank; the window is tiny).
fn percentile_99(samples: &[u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() as f64) * 0.99).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DegradeConfig {
        DegradeConfig {
            queue_degrade: 2,
            queue_shed: 4,
            p99_degrade: Duration::from_millis(10),
            p99_shed: Duration::from_millis(100),
            window: 8,
        }
    }

    #[test]
    fn queue_depth_climbs_and_descends_the_ladder() {
        let c = Controller::new(cfg());
        assert_eq!(c.level(), Level::Full);
        assert_eq!(c.note_queue(2), Level::Degraded);
        assert_eq!(c.note_queue(4), Level::Shed);
        // Pressure clears -> back to full service.
        assert_eq!(c.note_queue(0), Level::Full);
    }

    #[test]
    fn p99_latency_climbs_the_ladder() {
        let c = Controller::new(cfg());
        for _ in 0..8 {
            c.observe(Duration::from_millis(1), 0);
        }
        assert_eq!(c.level(), Level::Full);
        for _ in 0..8 {
            c.observe(Duration::from_millis(20), 0);
        }
        assert_eq!(c.level(), Level::Degraded);
        for _ in 0..8 {
            c.observe(Duration::from_millis(200), 0);
        }
        assert_eq!(c.level(), Level::Shed);
        // The window slides: fast requests recover the ladder.
        for _ in 0..8 {
            c.observe(Duration::from_micros(10), 0);
        }
        assert_eq!(c.level(), Level::Full);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile_99(&[]), 0);
        assert_eq!(percentile_99(&[7]), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_99(&v), 99);
    }
}
