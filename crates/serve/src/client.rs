//! Blocking client with capped exponential backoff + jitter and
//! per-request deadline propagation.
//!
//! Each probe opens one connection (the protocol is a single
//! request/response line, and one-shot connections keep retry semantics
//! trivial: a retried request can land on any worker). On `BUSY` the
//! client backs off — at least the server's `retry_after_ms` hint,
//! jittered — and retries up to `max_retries` times. When a deadline is
//! set, the *remaining* budget is recomputed before every attempt, sent
//! to the server as `deadline_ms=`, and mirrored into the socket
//! read/write timeouts so a stalled server cannot overrun it.

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::proto::Response;

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Retries after the first attempt (on `BUSY` or connect failure).
    pub max_retries: u32,
    /// First backoff step; doubles per retry up to `max_backoff`.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// End-to-end deadline across *all* attempts, propagated to the
    /// server per attempt as the remaining budget.
    pub deadline: Option<Duration>,
    /// Seed for the backoff jitter (and trace-id minting), so retry
    /// schedules are reproducible in tests and soak runs.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_retries: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            deadline: None,
            jitter_seed: 0x5eed_cafe,
        }
    }
}

/// A successful probe's answer.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeOutcome {
    /// Exact `(id, Pr(ed ≤ k))` hits from the full pipeline.
    Exact(Vec<(u32, f64)>),
    /// Superset candidate ids: a single server's filter-only answer
    /// (`shards` is `None`), or a coordinator's partial scatter-gather
    /// (`shards = Some((answered, total))`).
    Degraded {
        /// Candidate ids — a sound superset of the exact hit ids.
        ids: Vec<u32>,
        /// `(answered, total)` fleet coverage, when a coordinator
        /// answered from a subset of its shards.
        shards: Option<(u32, u32)>,
    },
}

/// Everything a `HEALTH` reply reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthReport {
    /// Degradation-ladder level (0 full, 1 degraded, 2 shed).
    pub level: u8,
    /// Admission-queue depth at reply time.
    pub queue: usize,
    /// Requests being processed by workers at reply time.
    pub inflight: usize,
    /// Whether the server started warm from an on-disk snapshot
    /// (`None` from peers that predate the field).
    pub warm: Option<bool>,
    /// Age in seconds of the snapshot a warm server started from.
    pub snapshot_age_s: Option<u64>,
}

/// The server-side trace a traced probe came back with.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeTrace {
    /// The trace id this client minted and the server echoed.
    pub trace_id: u64,
    /// Single-line Chrome trace-event JSON (`{"traceEvents":[...]}`),
    /// loadable in Perfetto / `chrome://tracing`.
    pub json: String,
}

/// Why a probe ultimately failed.
#[derive(Debug)]
pub enum ClientError {
    /// Every attempt was shed with `BUSY`.
    Busy {
        /// Attempts made (initial + retries) before giving up.
        attempts: u32,
    },
    /// The deadline expired — locally between attempts or server-side
    /// (a `DEADLINE` response is not retried: the budget is gone).
    Deadline,
    /// Connection/transport failure on the final attempt.
    Io(io::Error),
    /// The server answered, but not with a line this client understands.
    Protocol(String),
    /// The server reported a request-level error (`ERR ...`).
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Busy { attempts } => {
                write!(f, "server busy after {attempts} attempt(s)")
            }
            ClientError::Deadline => write!(f, "deadline exceeded"),
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Blocking one-shot probe client.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    cfg: ClientConfig,
    rng: u64,
}

impl Client {
    /// A client for `addr` (e.g. `"127.0.0.1:7878"`).
    pub fn new(addr: impl Into<String>, cfg: ClientConfig) -> Client {
        let seed = cfg.jitter_seed;
        Client {
            addr: addr.into(),
            cfg,
            // xorshift state must be non-zero.
            rng: seed | 1,
        }
    }

    /// Issues `PROBE k tau text`, retrying on `BUSY`/transport errors
    /// with capped exponential backoff + jitter.
    pub fn probe(&mut self, k: usize, tau: f64, text: &str) -> Result<ProbeOutcome, ClientError> {
        self.probe_inner(k, tau, text, None).map(|(outcome, _)| outcome)
    }

    /// Like [`Client::probe`], but mints a trace id, sends it as
    /// `trace_id=`, and returns the server's `TRACE` line (the Chrome
    /// trace-event JSON for the request) alongside the answer. The trace
    /// is `None` only if the answer arrived without one (e.g. the probe
    /// was shed at admission, before the traced path).
    pub fn probe_traced(
        &mut self,
        k: usize,
        tau: f64,
        text: &str,
    ) -> Result<(ProbeOutcome, Option<ProbeTrace>), ClientError> {
        let trace_id = self.mint_trace_id();
        self.probe_inner(k, tau, text, Some(trace_id))
    }

    /// A fresh nonzero trace id (xorshift over the jitter state; the low
    /// bit is forced so 0 — the "untraced" sentinel — never escapes).
    pub fn mint_trace_id(&mut self) -> u64 {
        self.next_u64() | 1
    }

    fn probe_inner(
        &mut self,
        k: usize,
        tau: f64,
        text: &str,
        trace_id: Option<u64>,
    ) -> Result<(ProbeOutcome, Option<ProbeTrace>), ClientError> {
        let started = Instant::now();
        let mut attempts = 0u32;
        let mut saw_busy = false;
        let mut backoff_hint = 0u64;
        loop {
            attempts += 1;
            let remaining = self.remaining(started)?;
            match self.attempt(k, tau, text, trace_id, remaining) {
                Ok((trace, Response::Ok(hits))) => return Ok((ProbeOutcome::Exact(hits), trace)),
                Ok((trace, Response::Degraded { ids, shards })) => {
                    return Ok((ProbeOutcome::Degraded { ids, shards }, trace))
                }
                Ok((_, Response::Deadline { .. })) => return Err(ClientError::Deadline),
                Ok((_, Response::Busy { retry_after_ms })) => {
                    saw_busy = true;
                    backoff_hint = retry_after_ms;
                }
                Ok((_, Response::Err(msg))) => return Err(ClientError::Server(msg)),
                Ok((_, other)) => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected response {:?}",
                        other.encode()
                    )))
                }
                Err(RetryableError::Fatal(e)) => return Err(e),
                Err(RetryableError::Transport(e)) => {
                    if attempts > self.cfg.max_retries {
                        return Err(ClientError::Io(e));
                    }
                }
            }
            if attempts > self.cfg.max_retries {
                if saw_busy {
                    return Err(ClientError::Busy { attempts });
                }
                return Err(ClientError::Deadline);
            }
            let pause = self.backoff(attempts, backoff_hint);
            if let Some(deadline) = self.cfg.deadline {
                if started.elapsed() + pause >= deadline {
                    return Err(ClientError::Deadline);
                }
            }
            std::thread::sleep(pause);
        }
    }

    /// One `HEALTH` round-trip, reduced to `(level, queue, inflight)`.
    pub fn health(&mut self) -> Result<(u8, usize, usize), ClientError> {
        let report = self.health_report()?;
        Ok((report.level, report.queue, report.inflight))
    }

    /// One `HEALTH` round-trip with every reported field, including the
    /// warm-restart markers a snapshot-booted server adds.
    pub fn health_report(&mut self) -> Result<HealthReport, ClientError> {
        match self.attempt_line("HEALTH", None) {
            Ok(Response::Health {
                level,
                queue,
                inflight,
                warm,
                snapshot_age_s,
            }) => Ok(HealthReport {
                level,
                queue,
                inflight,
                warm,
                snapshot_age_s,
            }),
            Ok(other) => Err(ClientError::Protocol(format!(
                "unexpected response {:?}",
                other.encode()
            ))),
            Err(RetryableError::Fatal(e)) => Err(e),
            Err(RetryableError::Transport(e)) => Err(ClientError::Io(e)),
        }
    }

    /// One `STATS` round-trip: the server's one-line obs JSON snapshot.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.attempt_line("STATS", None) {
            Ok(Response::Stats(json)) => Ok(json),
            Ok(other) => Err(ClientError::Protocol(format!(
                "unexpected response {:?}",
                other.encode()
            ))),
            Err(RetryableError::Fatal(e)) => Err(e),
            Err(RetryableError::Transport(e)) => Err(ClientError::Io(e)),
        }
    }

    /// One `METRICS` round-trip: the server's live Prometheus text
    /// exposition (unescaped, multi-line).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.attempt_line("METRICS", None) {
            Ok(Response::Metrics(text)) => Ok(text),
            Ok(other) => Err(ClientError::Protocol(format!(
                "unexpected response {:?}",
                other.encode()
            ))),
            Err(RetryableError::Fatal(e)) => Err(e),
            Err(RetryableError::Transport(e)) => Err(ClientError::Io(e)),
        }
    }

    /// One `SHARDS` round-trip: per-shard health states from a
    /// coordinator (a plain single-node server answers an empty list).
    pub fn shards(&mut self) -> Result<Vec<crate::proto::ShardState>, ClientError> {
        match self.attempt_line("SHARDS", None) {
            Ok(Response::Shards(states)) => Ok(states),
            Ok(other) => Err(ClientError::Protocol(format!(
                "unexpected response {:?}",
                other.encode()
            ))),
            Err(RetryableError::Fatal(e)) => Err(e),
            Err(RetryableError::Transport(e)) => Err(ClientError::Io(e)),
        }
    }

    /// Asks the server to drain gracefully (`SHUTDOWN` → `BYE`).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.attempt_line("SHUTDOWN", None) {
            Ok(Response::Bye) => Ok(()),
            Ok(other) => Err(ClientError::Protocol(format!(
                "unexpected response {:?}",
                other.encode()
            ))),
            Err(RetryableError::Fatal(e)) => Err(e),
            Err(RetryableError::Transport(e)) => Err(ClientError::Io(e)),
        }
    }

    /// Remaining deadline budget, or `None` when no deadline is set.
    fn remaining(&self, started: Instant) -> Result<Option<Duration>, ClientError> {
        match self.cfg.deadline {
            None => Ok(None),
            Some(deadline) => {
                let spent = started.elapsed();
                if spent >= deadline {
                    Err(ClientError::Deadline)
                } else {
                    Ok(Some(deadline - spent))
                }
            }
        }
    }

    fn attempt(
        &mut self,
        k: usize,
        tau: f64,
        text: &str,
        trace_id: Option<u64>,
        remaining: Option<Duration>,
    ) -> Result<(Option<ProbeTrace>, Response), RetryableError> {
        let mut line = format!("PROBE {k} {tau}");
        if let Some(budget) = remaining {
            let ms = budget.as_millis().clamp(1, u64::MAX as u128) as u64;
            line.push_str(&format!(" deadline_ms={ms}"));
        }
        if let Some(id) = trace_id {
            line.push_str(&format!(" trace_id={id:016x}"));
        }
        line.push(' ');
        line.push_str(text);
        self.attempt_request(&line, remaining)
    }

    /// One connection, one request line, one response line.
    fn attempt_line(
        &mut self,
        line: &str,
        remaining: Option<Duration>,
    ) -> Result<Response, RetryableError> {
        self.attempt_request(line, remaining)
            .map(|(_, response)| response)
    }

    /// One connection, one request line, and the response — preceded by
    /// an optional `TRACE` line when the request was a traced probe.
    fn attempt_request(
        &mut self,
        line: &str,
        remaining: Option<Duration>,
    ) -> Result<(Option<ProbeTrace>, Response), RetryableError> {
        let addrs = self
            .addr
            .to_socket_addrs()
            .map_err(RetryableError::Transport)?
            .collect::<Vec<_>>();
        let stream = match remaining {
            // The socket timeouts mirror the deadline so a stalled
            // server cannot overrun the budget.
            Some(budget) => addrs
                .first()
                .ok_or_else(|| {
                    RetryableError::Fatal(ClientError::Protocol(format!(
                        "address {:?} resolves to nothing",
                        self.addr
                    )))
                })
                .and_then(|addr| {
                    TcpStream::connect_timeout(addr, budget).map_err(RetryableError::Transport)
                })?,
            None => TcpStream::connect(&*addrs).map_err(RetryableError::Transport)?,
        };
        // Cap even deadline-free requests: the client must never hang
        // forever on a stalled server.
        const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);
        let io_timeout = remaining.unwrap_or(DEFAULT_IO_TIMEOUT);
        stream
            .set_read_timeout(Some(io_timeout))
            .map_err(RetryableError::Transport)?;
        stream
            .set_write_timeout(Some(io_timeout))
            .map_err(RetryableError::Transport)?;
        let mut writer = stream.try_clone().map_err(RetryableError::Transport)?;
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .map_err(RetryableError::Transport)?;
        let mut reply = String::new();
        let mut reader = BufReader::new(stream);
        let n = reader
            .read_line(&mut reply)
            .map_err(RetryableError::Transport)?;
        if n == 0 {
            // The server dropped the connection without answering (e.g.
            // an admission-path fault) — retryable.
            return Err(RetryableError::Transport(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before a response",
            )));
        }
        let first = Response::parse(&reply)
            .map_err(|msg| RetryableError::Fatal(ClientError::Protocol(msg)))?;
        let Response::Trace { trace_id, json } = first else {
            return Ok((None, first));
        };
        // A TRACE line always precedes the traced probe's real answer.
        let mut second = String::new();
        let n = reader
            .read_line(&mut second)
            .map_err(RetryableError::Transport)?;
        if n == 0 {
            return Err(RetryableError::Transport(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed after TRACE, before the answer",
            )));
        }
        let response = Response::parse(&second)
            .map_err(|msg| RetryableError::Fatal(ClientError::Protocol(msg)))?;
        Ok((Some(ProbeTrace { trace_id, json }), response))
    }

    /// Capped exponential backoff with 50–100% jitter, floored at the
    /// server's `retry_after_ms` hint and never below `base_backoff`.
    fn backoff(&mut self, attempt: u32, hint_ms: u64) -> Duration {
        let exp = self
            .cfg
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cfg.max_backoff);
        let floor = Duration::from_millis(hint_ms);
        let full = exp.max(floor);
        // Jitter in [50%, 100%] of the window spreads synchronized
        // retry storms without ever retrying *before* half the hint.
        let half = full / 2;
        let jittered = half + Duration::from_nanos(self.next_u64() % (half.as_nanos().max(1) as u64));
        // A saturated server hints retry_after_ms=0 (and a tiny
        // max_backoff collapses the window the same way); without a
        // positive floor the retry loop hot-spins against a server that
        // just shed us. base_backoff is the client's own minimum pause.
        jittered.max(self.cfg.base_backoff)
    }

    /// xorshift64: deterministic, dependency-free jitter.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }
}

enum RetryableError {
    /// Transport-level failure: worth another attempt.
    Transport(io::Error),
    /// Semantic failure: retrying cannot help.
    Fatal(ClientError),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_jittered_and_respects_hints() {
        let mut c = Client::new("127.0.0.1:1", ClientConfig::default());
        for attempt in 1..=10 {
            let pause = c.backoff(attempt, 0);
            assert!(pause <= c.cfg.max_backoff, "attempt {attempt}: {pause:?}");
            let floor_half = c.cfg.base_backoff / 2;
            assert!(pause >= floor_half, "attempt {attempt}: {pause:?}");
        }
        // A server hint larger than the exponential window becomes the
        // floor: the client never retries before half the hint.
        let pause = c.backoff(1, 800);
        assert!(pause >= Duration::from_millis(400), "{pause:?}");
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mut a = Client::new("127.0.0.1:1", ClientConfig::default());
        let mut b = Client::new("127.0.0.1:1", ClientConfig::default());
        let seq_a: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(seq_a, seq_b);
        let mut c = Client::new(
            "127.0.0.1:1",
            ClientConfig {
                jitter_seed: 42,
                ..ClientConfig::default()
            },
        );
        let seq_c: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn zero_retry_hint_never_collapses_the_pause_to_a_hot_spin() {
        // Regression: with the exponential window collapsed (max_backoff
        // below base) and the server hinting retry_after_ms=0, the old
        // jitter math produced ~0ns pauses — a hot spin hammering a
        // server that just shed the request.
        let mut c = Client::new(
            "127.0.0.1:1",
            ClientConfig {
                base_backoff: Duration::from_millis(10),
                max_backoff: Duration::ZERO,
                ..ClientConfig::default()
            },
        );
        for attempt in 1..=6 {
            let pause = c.backoff(attempt, 0);
            assert!(
                pause >= c.cfg.base_backoff,
                "attempt {attempt}: pause {pause:?} below base_backoff"
            );
        }
    }

    #[test]
    fn fixed_seed_yields_a_pinned_backoff_schedule() {
        // Two clients with the same jitter_seed walk identical schedules
        // (what makes the overload/soak suites reproducible); the exact
        // nanosecond values are pinned so an accidental reseeding or
        // jitter-math change fails loudly.
        let cfg = ClientConfig {
            base_backoff: Duration::from_millis(8),
            max_backoff: Duration::from_millis(64),
            jitter_seed: 0xfeed_f00d,
            ..ClientConfig::default()
        };
        let schedule = |mut c: Client| -> Vec<u128> {
            (1..=5).map(|a| c.backoff(a, 0).as_nanos()).collect()
        };
        let a = schedule(Client::new("127.0.0.1:1", cfg.clone()));
        let b = schedule(Client::new("127.0.0.1:1", cfg.clone()));
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(
            a,
            vec![9_407_661, 18_630_908, 50_671_397, 49_045_627, 51_615_515],
            "pinned schedule for jitter_seed=0xfeed_f00d"
        );
        let reseeded = schedule(Client::new(
            "127.0.0.1:1",
            ClientConfig {
                jitter_seed: 0xfeed_f00e,
                ..cfg
            },
        ));
        assert_ne!(a, reseeded, "different seed, different schedule");
    }

    #[test]
    fn connecting_to_a_dead_port_fails_with_io_after_retries() {
        let mut client = Client::new(
            // Reserved port that nothing listens on.
            "127.0.0.1:1",
            ClientConfig {
                max_retries: 1,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                ..ClientConfig::default()
            },
        );
        match client.probe(1, 0.3, "ACGT") {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_fails_before_connecting() {
        let mut client = Client::new(
            "127.0.0.1:1",
            ClientConfig {
                deadline: Some(Duration::ZERO),
                ..ClientConfig::default()
            },
        );
        match client.probe(1, 0.3, "ACGT") {
            Err(ClientError::Deadline) => {}
            other => panic!("expected Deadline, got {other:?}"),
        }
    }
}
