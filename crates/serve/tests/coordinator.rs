//! Fleet-level suite for the scatter-gather coordinator: a real
//! coordinator over real length-band shards on loopback ports must be
//! bit-identical to the single-node server, prune fan-out with the
//! length filter, survive a panic at every coordinator failpoint, win
//! hedged races against stalled shards, and — the soak — keep serving
//! explicitly-marked supersets while one shard is dead, quarantine it,
//! and readmit it through a half-open trial once it returns.
//!
//! All tests serialise on a file-local mutex: `usj-fault` plans are
//! process-global and the shards run in-process.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use usj_core::{IndexedCollection, JoinConfig};
use usj_fault::{shield, FaultAction, FaultPlan};
use usj_model::{Alphabet, UncertainString};
use usj_serve::{
    coordinate, serve_shard, shard_partition, Client, ClientConfig, CoordConfig,
    CoordinatorHandle, ProbeOutcome, ServeConfig, ServerHandle, ShardSpec, ShardState,
};

fn lock() -> MutexGuard<'static, ()> {
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    shield::install();
    // A poisoned lock only means an earlier test failed; the guard
    // protects no data.
    TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

const K: usize = 1;
const TAU: f64 = 0.3;

/// The overload suite's collection: mostly length-6 strings, so every
/// shard of a 3-way partition is relevant to a length-6 probe.
fn uniform_strings() -> Vec<UncertainString> {
    let alpha = Alphabet::dna();
    [
        "ACGTAC",
        "ACGTAT",
        "ACG{(T,0.9),(G,0.1)}AC",
        "TTTTTT",
        "ACGACG",
        "AC{(G,0.7),(A,0.3)}TAC",
        "GGGCCC",
        "ACGTACGT",
    ]
    .iter()
    .map(|t| UncertainString::parse(t, &alpha).unwrap())
    .collect()
}

/// Strictly increasing lengths 4..=12, so a 3-way partition has
/// disjoint bands and the length filter visibly prunes fan-out.
fn diverse_strings() -> Vec<UncertainString> {
    let alpha = Alphabet::dna();
    [
        "ACGT",
        "ACGTA",
        "ACGTAC",
        "ACGTACG",
        "ACGTACGT",
        "ACGTACGTA",
        "ACGTACGTAC",
        "ACGTACGTACGT",
    ]
    .iter()
    .map(|t| UncertainString::parse(t, &alpha).unwrap())
    .collect()
}

/// Local oracle: the single-node exact hit set for `probe`.
fn oracle(strings: &[UncertainString], probe: &str) -> Vec<(u32, f64)> {
    let alpha = Alphabet::dna();
    let probe = UncertainString::parse(probe, &alpha).unwrap();
    IndexedCollection::build(JoinConfig::new(K, TAU), alpha.size(), strings.to_vec())
        .search(&probe)
        .into_iter()
        .map(|h| (h.id, h.prob))
        .collect()
}

struct Fleet {
    shards: Vec<ServerHandle>,
    coord: CoordinatorHandle,
}

impl Fleet {
    /// `n` in-process shards over `strings` plus a coordinator; shard
    /// `proxied` (if any) is reached through `via` instead of directly.
    fn start(
        strings: &[UncertainString],
        n: usize,
        proxied: Option<(usize, SocketAddr)>,
        tweak: impl FnOnce(&mut CoordConfig),
    ) -> Fleet {
        let partition = shard_partition(strings, n);
        let shards: Vec<ServerHandle> = (0..n)
            .map(|i| {
                serve_shard(
                    JoinConfig::new(K, TAU),
                    Alphabet::dna(),
                    strings,
                    &partition,
                    i,
                    ServeConfig::default(),
                )
                .expect("bind shard")
            })
            .collect();
        let mut addrs: Vec<String> = shards.iter().map(|h| h.addr().to_string()).collect();
        if let Some((idx, via)) = proxied {
            addrs[idx] = via.to_string();
        }
        let specs = ShardSpec::from_partition(&partition, &addrs).expect("specs");
        let mut cfg = CoordConfig {
            k: K,
            tau: TAU,
            ..CoordConfig::default()
        };
        tweak(&mut cfg);
        let coord = coordinate(specs, Alphabet::dna(), cfg).expect("bind coordinator");
        Fleet { shards, coord }
    }

    fn client(&self, cfg: ClientConfig) -> Client {
        Client::new(self.coord.addr().to_string(), cfg)
    }

    fn stop(self) {
        self.coord.shutdown();
        for shard in self.shards {
            shard.shutdown();
        }
    }
}

/// One raw request/response round-trip against the coordinator (no
/// client retry machinery, so `ERR` lines stay visible).
fn raw_roundtrip(coord: &CoordinatorHandle, line: &str) -> String {
    let stream = TcpStream::connect(coord.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(line.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).expect("read");
    reply.trim().to_string()
}

/// Pulls the scalar value of `"name": <n>` out of the stats JSON (the
/// per-probe block for the same name opens with `{`, so it never
/// matches).
fn stat_u64(stats: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\": ");
    let mut from = 0;
    while let Some(at) = stats[from..].find(&needle) {
        let rest = &stats[from + at + needle.len()..];
        if rest.starts_with(|c: char| c.is_ascii_digit()) {
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            return digits.parse().unwrap();
        }
        from += at + needle.len();
    }
    panic!("no scalar {name} in {stats}");
}

fn assert_exact(outcome: ProbeOutcome, expected: &[(u32, f64)], context: &str) {
    match outcome {
        ProbeOutcome::Exact(hits) => {
            assert_eq!(hits.len(), expected.len(), "{context}");
            for ((id, prob), (oid, oprob)) in hits.iter().zip(expected) {
                assert_eq!(id, oid, "{context}");
                assert_eq!(prob.to_bits(), oprob.to_bits(), "bit-exact: {context}");
            }
        }
        other => panic!("{context}: expected exact answer, got {other:?}"),
    }
}

#[test]
fn fleets_of_one_and_three_match_the_single_node_answer_bit_identically() {
    let _guard = lock();
    let strings = uniform_strings();
    let probes = [
        "ACGTAC",
        "AC{(G,0.7),(A,0.3)}TAC",
        "TTTTTT",
        "GGGCCC",
        "ACGTACGT",
        "ACGTACGTACGTACGTACGT", // longer than every band + k: zero fan-out
    ];
    for n in [1usize, 3] {
        let fleet = Fleet::start(&strings, n, None, |_| {});
        let mut client = fleet.client(ClientConfig::default());
        for text in probes {
            let expected = oracle(&strings, text);
            let outcome = client.probe(K, TAU, text).expect("probe");
            assert_exact(outcome, &expected, &format!("n={n} probe={text}"));
        }
        // The coordinator speaks the whole verb set too.
        let (level, _queue, _inflight) = client.health().expect("health");
        assert_eq!(level, 0, "all shards healthy");
        assert_eq!(
            client.shards().expect("shards"),
            vec![ShardState::Healthy; n]
        );
        fleet.stop();
    }
}

#[test]
fn length_filter_prunes_dead_irrelevant_shards_out_of_strict_requests() {
    let _guard = lock();
    let strings = diverse_strings();
    // Bands: shard 0 = lengths 4..=6, shard 1 = 7..=9, shard 2 = 10..=12.
    let fleet = Fleet::start(&strings, 3, None, |cfg| {
        cfg.strict = true;
        cfg.client = ClientConfig {
            max_retries: 1,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(5),
            ..ClientConfig::default()
        };
        cfg.default_deadline = Some(Duration::from_millis(800));
    });
    let mut client = fleet.client(ClientConfig::default());
    // Kill the long-strings shard outright.
    let mut shards = fleet.shards;
    shards.pop().expect("three shards").shutdown();
    // A short probe's band [3, 5] only touches shard 0: strict mode
    // still answers exactly because the dead shard is never dialed.
    let expected = oracle(&strings, "ACGT");
    assert!(!expected.is_empty(), "oracle sanity");
    let outcome = client.probe(K, TAU, "ACGT").expect("pruned probe");
    assert_exact(outcome, &expected, "short probe, dead long shard");
    // A long probe needs the dead shard: strict mode refuses rather
    // than serving a silent subset.
    match client.probe(K, TAU, "ACGTACGTACGT") {
        Err(usj_serve::ClientError::Server(msg)) => {
            assert!(msg.contains("strict partial-result policy"), "{msg}");
            assert!(msg.contains("0/1"), "only the dead shard was relevant: {msg}");
        }
        other => panic!("strict fleet must refuse, got {other:?}"),
    }
    fleet.coord.shutdown();
    for shard in shards {
        shard.shutdown();
    }
}

#[test]
fn a_panic_at_every_coordinator_failpoint_poisons_one_request_not_the_fleet() {
    let _guard = lock();
    let strings = uniform_strings();
    let text = "ACGTAC";
    let expected = oracle(&strings, text);
    // The two pure-coordinator points fire unconditionally per request.
    for point in ["coord.dispatch", "coord.gather"] {
        let fleet = Fleet::start(&strings, 3, None, |_| {});
        let mut client = fleet.client(ClientConfig::default());
        assert_exact(
            client.probe(K, TAU, text).expect("warmup"),
            &expected,
            point,
        );
        let armed = FaultPlan::one_shot_panic(point).arm();
        let reply = raw_roundtrip(&fleet.coord, &format!("PROBE {K} {TAU} {text}"));
        assert!(
            reply.starts_with("ERR internal panic:"),
            "{point}: perimeter must answer the poisoned request: {reply}"
        );
        drop(armed);
        assert_exact(
            client.probe(K, TAU, text).expect("fleet survived"),
            &expected,
            point,
        );
        fleet.stop();
    }
    // shard.accept fires on one shard's admission: its connection dies,
    // the coordinator's per-shard client retries, and the request must
    // still come back bit-identical without any ERR escaping.
    {
        let fleet = Fleet::start(&strings, 3, None, |_| {});
        let mut client = fleet.client(ClientConfig::default());
        let armed = FaultPlan::one_shot_panic("shard.accept").arm();
        assert_exact(
            client.probe(K, TAU, text).expect("retry absorbs the kill"),
            &expected,
            "shard.accept",
        );
        drop(armed);
        assert_exact(
            client.probe(K, TAU, text).expect("fleet survived"),
            &expected,
            "shard.accept aftermath",
        );
        fleet.stop();
    }
    // coord.hedge only fires when a hedge is actually sent: stall every
    // primary so the hedge pass triggers, and panic there.
    {
        let fleet = Fleet::start(&strings, 3, None, |cfg| {
            cfg.hedge_after = Duration::from_millis(10);
        });
        let mut client = fleet.client(ClientConfig::default());
        let mut plan = FaultPlan::new().fail_at("coord.hedge", 0, FaultAction::Panic);
        for nth in 0..3 {
            plan = plan.fail_at(
                "serve.probe",
                nth,
                FaultAction::Delay(Duration::from_millis(120)),
            );
        }
        let armed = plan.arm();
        let reply = raw_roundtrip(&fleet.coord, &format!("PROBE {K} {TAU} {text}"));
        assert!(
            reply.starts_with("ERR internal panic:"),
            "coord.hedge: {reply}"
        );
        drop(armed);
        assert_exact(
            client.probe(K, TAU, text).expect("fleet survived"),
            &expected,
            "coord.hedge aftermath",
        );
        fleet.stop();
    }
}

#[test]
fn hedged_second_requests_win_over_a_stalled_shard() {
    let _guard = lock();
    let strings = uniform_strings();
    let text = "ACGTAC";
    let expected = oracle(&strings, text);
    let fleet = Fleet::start(&strings, 3, None, |cfg| {
        cfg.hedge_after = Duration::from_millis(10);
        cfg.default_deadline = Some(Duration::from_secs(2));
    });
    let mut client = fleet.client(ClientConfig::default());
    // Stall every shard's first probe execution well past the hedge
    // delay; the hedged re-sends are fresh executions and run at full
    // speed, so they answer first.
    let mut plan = FaultPlan::new();
    for nth in 0..3 {
        plan = plan.fail_at(
            "serve.probe",
            nth,
            FaultAction::Delay(Duration::from_millis(200)),
        );
    }
    let armed = plan.arm();
    let outcome = client.probe(K, TAU, text).expect("hedged probe");
    drop(armed);
    assert_exact(outcome, &expected, "hedged answer is still bit-exact");
    let stats = fleet.coord.stats_json();
    assert!(
        stat_u64(&stats, "hedges_sent") >= 1,
        "a stalled shard must be hedged: {stats}"
    );
    assert!(
        stat_u64(&stats, "hedges_won") >= 1,
        "the unstalled twin must win: {stats}"
    );
    fleet.stop();
}

// ---------------------------------------------------------------------
// Kill-a-shard soak: a TCP proxy in front of one shard lets the test
// kill and revive that shard's connectivity without touching the others.
// ---------------------------------------------------------------------

struct Proxy {
    addr: SocketAddr,
    killed: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Proxy {
    fn start(upstream: SocketAddr) -> Proxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        let addr = listener.local_addr().unwrap();
        let killed = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let killed2 = Arc::clone(&killed);
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                // ordering: SeqCst — test-only control flags; strongest
                // ordering, no performance concern.
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(conn) = conn else { continue };
                // Dead shard: accept and immediately sever, so the
                // coordinator's client sees a clean connection loss.
                // ordering: SeqCst — test-only control flag.
                if killed2.load(Ordering::SeqCst) {
                    drop(conn);
                    continue;
                }
                let Ok(up) = TcpStream::connect(upstream) else {
                    drop(conn);
                    continue;
                };
                let (Ok(conn_r), Ok(up_r)) = (conn.try_clone(), up.try_clone()) else {
                    continue;
                };
                std::thread::spawn(move || pump(conn_r, up));
                std::thread::spawn(move || pump(up_r, conn));
            }
        });
        Proxy {
            addr,
            killed,
            stop,
            thread: Some(thread),
        }
    }

    fn kill(&self) {
        // ordering: SeqCst — test-only control flag.
        self.killed.store(true, Ordering::SeqCst);
    }

    fn revive(&self) {
        // ordering: SeqCst — test-only control flag.
        self.killed.store(false, Ordering::SeqCst);
    }
}

impl Drop for Proxy {
    fn drop(&mut self) {
        // ordering: SeqCst — test-only control flag.
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn pump(mut from: TcpStream, mut to: TcpStream) {
    let _ = from.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = std::io::copy(&mut from, &mut to);
    let _ = to.shutdown(std::net::Shutdown::Both);
}

#[test]
fn killing_a_shard_mid_soak_degrades_quarantines_and_readmits() {
    let _guard = lock();
    let strings = uniform_strings();
    let text = "ACGTAC";
    let expected = oracle(&strings, text);
    let expected_ids: Vec<u32> = expected.iter().map(|(id, _)| *id).collect();

    // Shard 1 owns ids {3, 4, 5} of the (length, id)-sorted partition;
    // it is reached through the killable proxy.
    let partition = shard_partition(&strings, 3);
    let victim_ids = partition.shards[1].ids.clone();
    let surviving_expected: Vec<u32> = expected_ids
        .iter()
        .copied()
        .filter(|id| !victim_ids.contains(id))
        .collect();
    assert!(
        !surviving_expected.is_empty() && surviving_expected.len() < expected_ids.len(),
        "soak needs hits on both sides of the kill: {expected_ids:?} vs {victim_ids:?}"
    );

    // Boot the real shard first so the proxy knows its upstream.
    let pre = Fleet::start(&strings, 3, None, |_| {});
    let victim_addr = pre.shards[1].addr();
    let proxy = Proxy::start(victim_addr);
    let coord = {
        let addrs: Vec<String> = pre
            .shards
            .iter()
            .enumerate()
            .map(|(i, h)| {
                if i == 1 {
                    proxy.addr.to_string()
                } else {
                    h.addr().to_string()
                }
            })
            .collect();
        let specs = ShardSpec::from_partition(&partition, &addrs).expect("specs");
        coordinate(
            specs,
            Alphabet::dna(),
            CoordConfig {
                k: K,
                tau: TAU,
                strict: false,
                quarantine_after: 2,
                quarantine_cooldown: Duration::from_millis(250),
                hedge_after: Duration::from_millis(100),
                default_deadline: Some(Duration::from_millis(800)),
                client: ClientConfig {
                    max_retries: 1,
                    base_backoff: Duration::from_millis(2),
                    max_backoff: Duration::from_millis(5),
                    ..ClientConfig::default()
                },
                ..CoordConfig::default()
            },
        )
        .expect("bind coordinator")
    };
    // Retire the unused pre-built coordinator; keep its shards.
    pre.coord.shutdown();
    let shards = pre.shards;
    let mut client = Client::new(coord.addr().to_string(), ClientConfig::default());

    // Healthy fleet: bit-identical, through the proxy and all.
    assert_exact(
        client.probe(K, TAU, text).expect("healthy fleet"),
        &expected,
        "soak warmup",
    );

    // Kill the shard. Every answer until readmission must be a marked
    // superset of what the surviving shards hold — never a clean OK.
    proxy.kill();
    for round in 0..2 {
        match client.probe(K, TAU, text).expect("degraded answer") {
            ProbeOutcome::Degraded { ids, shards } => {
                assert_eq!(
                    shards,
                    Some((2, 3)),
                    "round {round}: partiality must be marked"
                );
                assert_eq!(
                    ids, surviving_expected,
                    "round {round}: exact union of the surviving shards"
                );
            }
            other => panic!("round {round}: dead shard must mark the answer, got {other:?}"),
        }
    }
    // Two consecutive failures tripped the quarantine.
    assert_eq!(
        client.shards().expect("SHARDS"),
        vec![
            ShardState::Healthy,
            ShardState::Quarantined,
            ShardState::Healthy
        ]
    );
    let metrics = coord.metrics_text();
    assert!(
        metrics.contains("usj_shard_up{shard=\"1\"} 0"),
        "quarantined shard exported down: {metrics}"
    );
    assert!(
        metrics.contains("usj_shard_up{shard=\"0\"} 1"),
        "healthy shard exported up: {metrics}"
    );

    // While quarantined the dead shard is not even dialed; answers stay
    // marked and the fleet stays fast.
    match client.probe(K, TAU, text).expect("quarantined answer") {
        ProbeOutcome::Degraded { ids, shards } => {
            assert_eq!(shards, Some((2, 3)));
            assert_eq!(ids, surviving_expected);
        }
        other => panic!("quarantine must keep the marker, got {other:?}"),
    }

    // Revive the shard and wait out the cooldown: the health machine
    // half-opens, a trial probe succeeds, and the shard is readmitted.
    proxy.revive();
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(
        client.shards().expect("SHARDS"),
        vec![
            ShardState::Healthy,
            ShardState::HalfOpen,
            ShardState::Healthy
        ]
    );
    assert_exact(
        client.probe(K, TAU, text).expect("half-open trial"),
        &expected,
        "readmitted fleet is bit-identical again",
    );
    assert_eq!(
        client.shards().expect("SHARDS"),
        vec![ShardState::Healthy; 3]
    );

    let stats = coord.stats_json();
    assert!(stat_u64(&stats, "shards_quarantined") >= 1, "{stats}");
    assert!(stat_u64(&stats, "partial_responses") >= 3, "{stats}");
    coord.shutdown();
    for shard in shards {
        shard.shutdown();
    }
}
