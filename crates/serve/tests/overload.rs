//! End-to-end overload and fault suite for the query service: a real
//! server on a loopback port, driven past saturation with fault-plan
//! delays, must shed with `BUSY`, degrade with superset answers, never
//! serve a corrupted result, never lose the listener to a panic, and
//! drain cleanly on shutdown.
//!
//! All tests serialise on a file-local mutex: `usj-fault` plans are
//! process-global, so a concurrently running test would consume another
//! plan's scheduled hits.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Barrier, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use usj_fault::{shield, FaultAction, FaultPlan};
use usj_model::{Alphabet, UncertainString};
use usj_serve::degrade::DegradeConfig;
use usj_serve::{
    serve, Client, ClientConfig, ClientError, ProbeOutcome, Response, ServeConfig, ServerHandle,
};

fn lock() -> MutexGuard<'static, ()> {
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    shield::install();
    // A poisoned lock only means an earlier test failed; the guard
    // protects no data.
    TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

const K: usize = 1;
const TAU: f64 = 0.3;

/// Certain and uncertain DNA strings with matches at `k = 1`.
fn strings() -> Vec<UncertainString> {
    let alpha = Alphabet::dna();
    [
        "ACGTAC",
        "ACGTAT",
        "ACG{(T,0.9),(G,0.1)}AC",
        "TTTTTT",
        "ACGACG",
        "AC{(G,0.7),(A,0.3)}TAC",
        "GGGCCC",
        "ACGTACGT",
    ]
    .iter()
    .map(|t| UncertainString::parse(t, &alpha).unwrap())
    .collect()
}

fn indexed() -> usj_core::IndexedCollection {
    let alpha = Alphabet::dna();
    usj_core::IndexedCollection::build(usj_core::JoinConfig::new(K, TAU), alpha.size(), strings())
}

fn start(cfg: ServeConfig) -> ServerHandle {
    serve(indexed(), Alphabet::dna(), cfg).expect("bind loopback")
}

fn client(handle: &ServerHandle, cfg: ClientConfig) -> Client {
    Client::new(handle.addr().to_string(), cfg)
}

/// Local oracle: exact hit set for `probe` against the same index.
fn oracle(probe: &str) -> Vec<(u32, f64)> {
    let alpha = Alphabet::dna();
    let probe = UncertainString::parse(probe, &alpha).unwrap();
    indexed()
        .search(&probe)
        .into_iter()
        .map(|h| (h.id, h.prob))
        .collect()
}

/// One raw request/response round-trip (no client retry machinery).
fn raw_roundtrip(handle: &ServerHandle, line: &str) -> String {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(line.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).expect("read");
    reply.trim().to_string()
}

#[test]
fn exact_probes_match_local_search_bit_identically() {
    let _guard = lock();
    let handle = start(ServeConfig::default());
    let mut client = client(&handle, ClientConfig::default());
    for text in ["ACGTAC", "AC{(G,0.7),(A,0.3)}TAC", "TTTTTT", "GGGCCC"] {
        let expected = oracle(text);
        match client.probe(K, TAU, text).expect("probe") {
            ProbeOutcome::Exact(hits) => {
                assert_eq!(hits.len(), expected.len(), "{text}");
                for ((id, prob), (oid, oprob)) in hits.iter().zip(&expected) {
                    assert_eq!(id, oid, "{text}");
                    assert_eq!(prob.to_bits(), oprob.to_bits(), "bit-exact for {text}");
                }
            }
            other => panic!("unloaded server must answer exactly, got {other:?}"),
        }
    }
    let (level, queue, _inflight) = client.health().expect("health");
    assert_eq!(level, 0, "unloaded server serves at full level");
    assert_eq!(queue, 0);
    let stats = client.stats().expect("stats");
    assert!(!stats.contains('\n'), "STATS is one line");
    assert!(stats.contains("\"serve_accepted\""), "{stats}");
    assert!(stats.contains("\"serve_full\": 4"), "{stats}");
    let final_stats = handle.shutdown();
    assert!(final_stats.contains("\"serve_full\": 4"), "{final_stats}");
}

#[test]
fn saturated_server_sheds_degrades_and_never_corrupts() {
    let _guard = lock();
    // One worker, a slow probe stage, a tiny admission queue and a low
    // degrade threshold: concurrent clients must overrun the service.
    let mut plan = FaultPlan::new();
    for nth in 0..16 {
        plan = plan.fail_at(
            "serve.probe",
            nth,
            FaultAction::Delay(Duration::from_millis(60)),
        );
    }
    let armed = plan.arm();
    let handle = start(ServeConfig {
        workers: 1,
        queue_cap: 3,
        degrade: DegradeConfig {
            queue_degrade: 2,
            queue_shed: 64,
            ..DegradeConfig::default()
        },
        ..ServeConfig::default()
    });
    let text = "ACGTAC";
    let expected = oracle(text);
    let expected_ids: BTreeSet<u32> = expected.iter().map(|(id, _)| *id).collect();

    const CLIENTS: usize = 8;
    let barrier = Barrier::new(CLIENTS);
    let outcomes: Vec<Result<ProbeOutcome, ClientError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let barrier = &barrier;
                let mut client = client(
                    &handle,
                    ClientConfig {
                        max_retries: 0, // surface BUSY instead of retrying
                        jitter_seed: 100 + i as u64,
                        ..ClientConfig::default()
                    },
                );
                scope.spawn(move || {
                    barrier.wait();
                    client.probe(K, TAU, text)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut exact = 0;
    let mut degraded = 0;
    let mut shed = 0;
    for outcome in outcomes {
        match outcome {
            Ok(ProbeOutcome::Exact(hits)) => {
                exact += 1;
                assert_eq!(hits.len(), expected.len());
                for ((id, prob), (oid, oprob)) in hits.iter().zip(&expected) {
                    assert_eq!(id, oid);
                    assert_eq!(prob.to_bits(), oprob.to_bits(), "served result corrupted");
                }
            }
            Ok(ProbeOutcome::Degraded { ids, .. }) => {
                degraded += 1;
                let got: BTreeSet<u32> = ids.iter().copied().collect();
                assert_eq!(got.len(), ids.len(), "duplicate candidate ids");
                assert!(
                    got.is_superset(&expected_ids),
                    "degraded answer {got:?} lost exact hits {expected_ids:?}"
                );
            }
            Err(ClientError::Busy { .. }) => shed += 1,
            Err(other) => panic!("unexpected client failure: {other}"),
        }
    }
    assert!(
        shed >= 1,
        "a saturated queue must shed (exact={exact} degraded={degraded})"
    );
    assert!(
        degraded >= 1,
        "a deep queue must degrade (exact={exact} shed={shed})"
    );
    assert_eq!(exact + degraded + shed, CLIENTS);

    drop(armed);
    // The overloaded server is still alive and drains cleanly.
    let final_stats = handle.shutdown();
    assert!(final_stats.contains("\"serve_shed\""), "{final_stats}");
    assert!(final_stats.contains("\"serve_degraded\""), "{final_stats}");
}

#[test]
fn injected_probe_panic_is_isolated_from_the_listener() {
    let _guard = lock();
    let armed = FaultPlan::new()
        .fail_at("serve.probe", 0, FaultAction::Panic)
        .arm();
    let handle = start(ServeConfig::default());
    let reply = raw_roundtrip(&handle, &format!("PROBE {K} {TAU} ACGTAC"));
    assert!(reply.starts_with("ERR internal panic:"), "{reply}");
    drop(armed);
    // The listener and workers survived: the next probe is exact.
    let mut client = client(&handle, ClientConfig::default());
    match client.probe(K, TAU, "ACGTAC").expect("post-panic probe") {
        ProbeOutcome::Exact(hits) => assert_eq!(
            hits.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            oracle("ACGTAC")
                .iter()
                .map(|(id, _)| *id)
                .collect::<Vec<_>>()
        ),
        other => panic!("expected exact answer, got {other:?}"),
    }
    let final_stats = handle.shutdown();
    assert!(final_stats.contains("\"serve_panics\": 1"), "{final_stats}");
}

#[test]
fn parse_and_accept_panics_are_isolated() {
    let _guard = lock();
    let armed = FaultPlan::new()
        .fail_at("serve.parse", 0, FaultAction::Panic)
        .arm();
    let handle = start(ServeConfig::default());
    let reply = raw_roundtrip(&handle, "HEALTH");
    assert!(reply.starts_with("ERR internal panic:"), "{reply}");
    drop(armed);

    // An admission-path panic drops one connection without a reply; the
    // listener keeps accepting.
    let armed = FaultPlan::new()
        .fail_at("serve.accept", 0, FaultAction::Panic)
        .arm();
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reply = String::new();
    let n = BufReader::new(stream).read_line(&mut reply).expect("read");
    assert_eq!(
        n, 0,
        "panicked admission closes without a reply, got {reply:?}"
    );
    drop(armed);

    let reply = raw_roundtrip(&handle, "HEALTH");
    assert!(reply.starts_with("HEALTH level="), "{reply}");
    let final_stats = handle.shutdown();
    assert!(final_stats.contains("\"serve_panics\": 2"), "{final_stats}");
}

#[test]
fn per_request_deadline_is_enforced_inside_the_probe() {
    let _guard = lock();
    let armed = FaultPlan::new()
        .fail_at(
            "serve.probe",
            0,
            FaultAction::Delay(Duration::from_millis(120)),
        )
        .arm();
    let handle = start(ServeConfig::default());
    // The injected stall outlives the 30ms budget: the server must
    // refuse to return partial results and say how long it spent.
    let reply = raw_roundtrip(&handle, &format!("PROBE {K} {TAU} deadline_ms=30 ACGTAC"));
    assert!(reply.starts_with("DEADLINE elapsed_ms="), "{reply}");
    let elapsed: u64 = reply
        .trim_start_matches("DEADLINE elapsed_ms=")
        .parse()
        .expect("elapsed_ms");
    assert!(elapsed >= 30, "deadline fired early at {elapsed}ms");
    drop(armed);
    // Without a deadline the same probe completes exactly.
    let reply = raw_roundtrip(&handle, &format!("PROBE {K} {TAU} ACGTAC"));
    assert!(reply.starts_with("OK "), "{reply}");
    let final_stats = handle.shutdown();
    assert!(
        final_stats.contains("\"serve_deadline\": 1"),
        "{final_stats}"
    );
}

#[test]
fn malformed_requests_get_err_and_mismatched_parameters_are_refused() {
    let _guard = lock();
    let handle = start(ServeConfig::default());
    let reply = raw_roundtrip(&handle, "FROBNICATE");
    assert!(reply.starts_with("ERR "), "{reply}");
    let reply = raw_roundtrip(&handle, "PROBE 1 0.3 AC(broken");
    assert!(reply.starts_with("ERR bad probe:"), "{reply}");
    // The index is built for (k, τ); other parameters are an explicit
    // protocol error, never a silently wrong answer.
    let reply = raw_roundtrip(&handle, "PROBE 3 0.3 ACGTAC");
    assert!(
        reply.starts_with("ERR this server is indexed for"),
        "{reply}"
    );
    handle.shutdown();
}

#[test]
fn wire_shutdown_drains_in_flight_work() {
    let _guard = lock();
    let mut plan = FaultPlan::new();
    for nth in 0..4 {
        plan = plan.fail_at(
            "serve.probe",
            nth,
            FaultAction::Delay(Duration::from_millis(50)),
        );
    }
    let armed = plan.arm();
    let handle = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let probes: Vec<_> = (0..2)
        .map(|_| {
            let mut client = Client::new(addr.to_string(), ClientConfig::default());
            std::thread::spawn(move || client.probe(K, TAU, "ACGTAC"))
        })
        .collect();
    // Let the probes reach the queue, then drain over the wire.
    std::thread::sleep(Duration::from_millis(20));
    let mut shutdown_client = Client::new(addr.to_string(), ClientConfig::default());
    shutdown_client.shutdown().expect("SHUTDOWN acknowledged");
    // Queued work still completes: drain finishes in-flight requests.
    for probe in probes {
        match probe.join().unwrap() {
            Ok(_) => {}
            Err(e) => panic!("in-flight probe lost during drain: {e}"),
        }
    }
    let final_stats = handle.wait();
    assert!(final_stats.contains("\"serve_accepted\""), "{final_stats}");
    drop(armed);
    // The drained server is gone: new connections are refused or closed.
    let refused = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(stream) => {
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .unwrap();
            let mut reply = String::new();
            matches!(BufReader::new(stream).read_line(&mut reply), Ok(0) | Err(_))
        }
    };
    assert!(refused, "a drained server must not serve new work");
}

#[test]
fn responses_roundtrip_through_the_public_proto_api() {
    // No server needed: guards the client-facing re-exports.
    let resp = Response::Ok(vec![(7, 0.25)]);
    assert_eq!(Response::parse(&resp.encode()).unwrap(), resp);
}
