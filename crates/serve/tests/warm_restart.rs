//! Warm-restart fault suite: servers booted through the snapshot
//! recovery ladder under injected salvage failures, fingerprint
//! mismatches, and cold misses.
//!
//! The tentpole behaviours pinned here:
//! * a band that fails salvage is served in `DEGRADED` superset mode
//!   (never a wrong exact answer) while the background rebuild runs,
//!   and is readmitted to exact service when it finishes;
//! * a snapshot written for a different run configuration refuses to
//!   boot, with the diagnosis in the error;
//! * a cold miss rebuilds, re-writes the snapshot in the background,
//!   and makes the *next* restart warm.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use usj_core::{snapshot, IndexedCollection, JoinConfig};
use usj_fault::{shield, FaultAction, FaultPlan};
use usj_model::{Alphabet, UncertainString};
use usj_serve::{serve_from_snapshot, Client, ClientConfig, ProbeOutcome, ServeConfig};

const K: usize = 1;
const TAU: f64 = 0.3;

/// Serialise with the rest of the fault suite: `usj-fault` plans are
/// process-global.
fn lock() -> MutexGuard<'static, ()> {
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    shield::install();
    TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn strings() -> Vec<UncertainString> {
    let alpha = Alphabet::dna();
    [
        "ACGTAC",
        "ACGTAT",
        "ACG{(T,0.9),(G,0.1)}AC",
        "TTTTTT",
        "ACGACG",
        "GGGCCC",
        "ACGTACGT",
        "ACGTACGG",
    ]
    .iter()
    .map(|t| UncertainString::parse(t, &alpha).unwrap())
    .collect()
}

fn config() -> JoinConfig {
    JoinConfig::new(K, TAU)
}

fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static N: AtomicUsize = AtomicUsize::new(0);
    // ordering: Relaxed — the counter only needs uniqueness.
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("usj-warm-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Exact hit ids for `probe` against a never-persisted build — the
/// ground truth every served answer is checked against.
fn exact_ids(coll: &IndexedCollection, probe: &str) -> Vec<u32> {
    let probe = UncertainString::parse(probe, &Alphabet::dna()).unwrap();
    coll.search(&probe).into_iter().map(|h| h.id).collect()
}

/// A band that fails salvage at boot is served as a `DEGRADED` superset
/// — every interim answer contains all true hits — and the background
/// rebuild readmits it to exact service, bumping
/// `snapshot_bands_rebuilt` in the exposition.
#[test]
fn failed_salvage_band_serves_superset_until_readmitted() {
    let _g = lock();
    let dir = scratch("salvage");
    let path = dir.join("index.snap");
    let cold = IndexedCollection::build(config(), 4, strings());
    snapshot::write(&path, &cold).expect("snapshot commits");
    let want = exact_ids(&cold, "ACGTAC");

    let (handle, report) = {
        // The guard spans only the boot: the first salvage attempt (the
        // length-6 band) fails, later fires — including the refresh
        // write — pass.
        let _guard = FaultPlan::new()
            .fail_at(
                "snapshot.salvage",
                0,
                FaultAction::Error("salvage refused".into()),
            )
            .arm();
        serve_from_snapshot(
            &path,
            config(),
            strings(),
            Alphabet::dna(),
            ServeConfig::default(),
        )
        .expect("boot survives a failed salvage")
    };
    assert!(report.warm, "salvaged boot is still warm: {report:?}");
    assert_eq!(report.degraded_bands, vec![6], "length-6 band degraded");

    // Until the rebuild lands, the touched probe is answered DEGRADED
    // with a superset; afterwards it goes exact. Either way no answer
    // may ever miss a true hit.
    let mut c = Client::new(handle.addr().to_string(), ClientConfig::default());
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match c.probe(K, TAU, "ACGTAC").expect("probe") {
            ProbeOutcome::Degraded { ids, .. } => {
                assert!(
                    want.iter().all(|id| ids.binary_search(id).is_ok()),
                    "superset answer {ids:?} misses a true hit from {want:?}"
                );
            }
            ProbeOutcome::Exact(hits) => {
                let ids: Vec<u32> = hits.into_iter().map(|(id, _)| id).collect();
                assert_eq!(ids, want, "readmitted band answers diverged");
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "band was never readmitted to exact service"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let text = handle.metrics_text();
    assert!(
        text.contains("\nusj_snapshot_bands_rebuilt_total 1\n"),
        "readmission not counted:\n{text}"
    );
    assert!(text.contains("\nusj_warm_restarts_total 1\n"));
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A snapshot written under a different run configuration refuses to
/// boot — rung 3 of the ladder surfaces the diagnosis instead of
/// silently serving the wrong index.
#[test]
fn fingerprint_mismatch_refuses_to_boot() {
    let _g = lock();
    let dir = scratch("refuse");
    let path = dir.join("index.snap");
    let other = IndexedCollection::build(JoinConfig::new(2, 0.5), 4, strings());
    snapshot::write(&path, &other).expect("snapshot commits");
    let msg = match serve_from_snapshot(
        &path,
        config(),
        strings(),
        Alphabet::dna(),
        ServeConfig::default(),
    ) {
        Err(err) => err.to_string(),
        Ok(_) => panic!("mismatched fingerprint was served"),
    };
    assert!(msg.contains("fingerprint"), "no diagnosis in {msg:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A cold miss (no snapshot on disk) rebuilds and re-writes the image
/// in the background, so the next restart of the same server is warm.
#[test]
fn cold_miss_writes_the_snapshot_that_warms_the_next_restart() {
    let _g = lock();
    let dir = scratch("coldwarm");
    let path = dir.join("index.snap");
    let (first, report) = serve_from_snapshot(
        &path,
        config(),
        strings(),
        Alphabet::dna(),
        ServeConfig::default(),
    )
    .expect("cold boot");
    assert!(!report.warm, "missing snapshot cannot be warm");
    let mut c = Client::new(first.addr().to_string(), ClientConfig::default());
    let health = c.health_report().expect("HEALTH");
    assert_eq!(health.warm, Some(false));
    // The refresh runs in the background; wait for the durable rename.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !path.exists() {
        assert!(Instant::now() < deadline, "snapshot refresh never landed");
        std::thread::sleep(Duration::from_millis(10));
    }
    first.shutdown();

    let (second, report) = serve_from_snapshot(
        &path,
        config(),
        strings(),
        Alphabet::dna(),
        ServeConfig::default(),
    )
    .expect("second boot");
    assert!(report.warm, "refreshed snapshot must boot warm: {report:?}");
    let cold = IndexedCollection::build(config(), 4, strings());
    let mut c = Client::new(second.addr().to_string(), ClientConfig::default());
    for probe in ["ACGTAC", "ACGTACGT", "TTTTTT"] {
        match c.probe(K, TAU, probe).expect("probe") {
            ProbeOutcome::Exact(hits) => {
                let ids: Vec<u32> = hits.into_iter().map(|(id, _)| id).collect();
                assert_eq!(ids, exact_ids(&cold, probe), "warm answers diverged");
            }
            other => panic!("unexpected degraded answer {other:?}"),
        }
    }
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
