//! Wire-level tests for the observability surface of the query service:
//! the `METRICS` Prometheus exposition must cover the complete golden
//! schema (every counter, gauge, phase series, and funnel band × stage)
//! after real probes, and a `trace_id=`-carrying probe must come back
//! with a `TRACE` line holding loadable Chrome trace-event JSON with
//! nested probe → phase spans.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use usj_model::{Alphabet, UncertainString};
use usj_obs::{band_label, Counter, Gauge, Phase, FUNNEL_BANDS};
use usj_serve::{
    serve, serve_from_snapshot, Client, ClientConfig, ProbeOutcome, Response, ServeConfig,
    ServerHandle,
};

const K: usize = 1;
const TAU: f64 = 0.3;

fn strings() -> Vec<UncertainString> {
    let alpha = Alphabet::dna();
    [
        "ACGTAC",
        "ACGTAT",
        "ACG{(T,0.9),(G,0.1)}AC",
        "TTTTTT",
        "ACGACG",
        "AC{(G,0.7),(A,0.3)}TAC",
        "GGGCCC",
        "ACGTACGT",
    ]
    .iter()
    .map(|t| UncertainString::parse(t, &alpha).unwrap())
    .collect()
}

fn start() -> ServerHandle {
    let alpha = Alphabet::dna();
    let coll =
        usj_core::IndexedCollection::build(usj_core::JoinConfig::new(K, TAU), alpha.size(), strings());
    serve(coll, Alphabet::dna(), ServeConfig::default()).expect("bind loopback")
}

fn client(handle: &ServerHandle) -> Client {
    Client::new(handle.addr().to_string(), ClientConfig::default())
}

/// One raw request, reading exactly `lines` response lines (no client
/// machinery, so multi-line answers stay visible).
fn raw_lines(handle: &ServerHandle, line: &str, lines: usize) -> Vec<String> {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    writer
        .write_all(format!("{line}\n").as_bytes())
        .and_then(|()| writer.flush())
        .expect("send");
    let mut reader = BufReader::new(stream);
    (0..lines)
        .map(|_| {
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("read");
            assert!(!reply.is_empty(), "connection closed early");
            reply.trim_end().to_string()
        })
        .collect()
}

#[test]
fn metrics_exposition_covers_the_golden_schema_after_probes() {
    let handle = start();
    let mut c = client(&handle);
    // Two real probes so the funnel and phase series carry weight.
    let out = c.probe(K, TAU, "ACGTAC").expect("probe");
    assert!(matches!(out, ProbeOutcome::Exact(_)));
    c.probe(K, TAU, "ACGTACGT").expect("probe");
    let text = c.metrics().expect("METRICS");
    // Schema-pinned: the full golden counter/gauge set...
    for counter in Counter::ALL {
        assert!(
            text.contains(&format!("usj_{}_total ", counter.name())),
            "missing counter {}",
            counter.name()
        );
    }
    for gauge in Gauge::ALL {
        assert!(
            text.contains(&format!("\nusj_{} ", gauge.name())),
            "missing gauge {}",
            gauge.name()
        );
    }
    // ...every phase total and latency quantile...
    for phase in Phase::ALL {
        assert!(text.contains(&format!("usj_phase_ns_total{{phase=\"{}\"}}", phase.name())));
        for q in ["0.5", "0.9", "0.99"] {
            assert!(text.contains(&format!(
                "usj_phase_latency_ns{{phase=\"{}\",quantile=\"{q}\"}}",
                phase.name()
            )));
        }
    }
    // ...and the complete band × stage funnel, even at zero.
    for band in 0..FUNNEL_BANDS {
        for stage in [
            "pairs_in",
            "qgram_out",
            "freq_out",
            "cdf_accepted",
            "cdf_rejected",
            "cdf_undecided",
            "verified_similar",
            "verified_dissimilar",
            "output",
        ] {
            assert!(
                text.contains(&format!(
                    "usj_funnel_candidates_total{{band=\"{}\",stage=\"{stage}\"}}",
                    band_label(band)
                )),
                "missing funnel series band={band} stage={stage}"
            );
        }
    }
    // Exposition shape: every non-comment line is `name{labels} value`.
    let mut probes_total = None;
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(line.starts_with("# TYPE usj_"), "bad header: {line}");
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("name value");
        assert!(name.starts_with("usj_"), "bad series: {line}");
        let value: u64 = value.parse().expect("integer value");
        if name == "usj_probes_total" {
            probes_total = Some(value);
        }
    }
    assert_eq!(probes_total, Some(2), "both probes folded");
    // The 6- and 8-char probes land in band 0-7 and 8-15 respectively.
    assert!(!text.contains("usj_funnel_candidates_total{band=\"0-7\",stage=\"pairs_in\"} 0\n"));
    // The handle-side accessor renders the same registry.
    assert_eq!(handle.metrics_text().lines().count(), text.lines().count());
    handle.shutdown();
}

#[test]
fn sharding_metrics_are_pinned_in_the_golden_schema() {
    // The coordinator's counters and gauge live in the same golden
    // schema every server renders — a single-node exposition carries
    // them at zero, so dashboards work unchanged across topologies.
    let handle = start();
    let text = handle.metrics_text();
    for name in [
        "hedges_sent",
        "hedges_won",
        "shards_quarantined",
        "partial_responses",
    ] {
        assert!(
            text.contains(&format!("\nusj_{name}_total 0\n")),
            "missing zero-valued counter {name}"
        );
    }
    assert!(
        text.contains("\nusj_shard_healthy 0\n"),
        "missing shard_healthy gauge"
    );
    // The snapshot counters live in the same schema: a cold server
    // carries them at zero, so restart dashboards need no special case.
    for name in [
        "snapshot_bands_salvaged",
        "snapshot_bands_rebuilt",
        "snapshot_corruptions_detected",
        "warm_restarts",
    ] {
        assert!(
            text.contains(&format!("\nusj_{name}_total 0\n")),
            "missing zero-valued counter {name}"
        );
    }
    assert!(
        text.contains("\nusj_snapshot_age_seconds 0\n"),
        "missing snapshot_age_seconds gauge"
    );
    handle.shutdown();
}

/// Warm restart end to end: a server booted from a committed snapshot
/// answers identically to a cold-built one, reports `warm=true` plus
/// the snapshot age in `HEALTH` (on the wire and through
/// [`Client::health_report`]), and folds `warm_restarts` into the
/// metrics exposition — while a cold server reports `warm=false` and
/// omits the age token.
#[test]
fn warm_restart_reports_health_and_metrics() {
    let alpha = Alphabet::dna();
    let config = usj_core::JoinConfig::new(K, TAU);
    let coll = usj_core::IndexedCollection::build(config.clone(), alpha.size(), strings());
    let dir = std::env::temp_dir().join(format!("usj-warm-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("index.snap");
    usj_core::snapshot::write(&path, &coll).expect("snapshot commits");

    let cold = start();
    let (warm, report) = serve_from_snapshot(
        &path,
        config,
        strings(),
        Alphabet::dna(),
        ServeConfig::default(),
    )
    .expect("warm boot");
    assert!(report.warm, "verified snapshot must boot warm: {report:?}");

    // Same answers, probe for probe.
    let mut cold_client = client(&cold);
    let mut warm_client = Client::new(warm.addr().to_string(), ClientConfig::default());
    for probe in ["ACGTAC", "ACGTACGT", "TTTTTT"] {
        assert_eq!(
            warm_client.probe(K, TAU, probe).expect("warm probe"),
            cold_client.probe(K, TAU, probe).expect("cold probe"),
            "warm and cold answers diverged for {probe}"
        );
    }

    // HEALTH carries the warm markers, on the wire and via the client.
    let health = warm_client.health_report().expect("HEALTH");
    assert_eq!(health.warm, Some(true));
    assert!(health.snapshot_age_s.is_some(), "warm start has an age");
    let line = &raw_lines(&warm, "HEALTH", 1)[0];
    assert!(line.contains(" warm=true"), "no warm marker in {line:?}");
    assert!(line.contains(" snapshot_age_s="), "no age in {line:?}");

    let cold_health = cold_client.health_report().expect("HEALTH");
    assert_eq!(cold_health.warm, Some(false));
    assert_eq!(cold_health.snapshot_age_s, None);
    let line = &raw_lines(&cold, "HEALTH", 1)[0];
    assert!(line.contains(" warm=false"), "no warm marker in {line:?}");
    assert!(!line.contains("snapshot_age_s="), "cold start has no age");

    // The warm boot is visible in the exposition from the first scrape.
    let text = warm.metrics_text();
    assert!(
        text.contains("\nusj_warm_restarts_total 1\n"),
        "warm restart not counted:\n{text}"
    );
    warm.shutdown();
    cold.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn traced_probe_returns_its_trace_id_and_nested_chrome_spans() {
    let handle = start();
    let mut c = client(&handle);
    let baseline = c.probe(K, TAU, "ACGTAC").expect("probe");
    let (outcome, trace) = c.probe_traced(K, TAU, "ACGTAC").expect("traced probe");
    assert_eq!(outcome, baseline, "tracing never changes the answer");
    let trace = trace.expect("full-pipeline probes always come back traced");
    assert_ne!(trace.trace_id, 0);
    // The JSON is single-line Chrome trace-event format...
    assert!(!trace.json.contains('\n'));
    assert!(trace.json.starts_with("{\"traceEvents\":["));
    assert!(trace.json.ends_with("]}"));
    // ...with complete events carrying the echoed trace id...
    assert!(trace.json.contains("\"ph\":\"X\""));
    assert!(trace
        .json
        .contains(&format!("\"trace\":\"{:016x}\"", trace.trace_id)));
    // ...and nested spans: a probe span plus at least one phase span
    // pointing at a parent.
    assert!(trace.json.contains("\"cat\":\"probe\""));
    assert!(trace.json.contains("\"cat\":\"phase\""));
    assert!(trace.json.contains("\"parent\":"));
    handle.shutdown();
}

#[test]
fn trace_line_precedes_the_answer_on_the_wire() {
    let handle = start();
    let lines = raw_lines(
        &handle,
        "PROBE 1 0.3 trace_id=00000000deadbeef ACGTAC",
        2,
    );
    let trace = Response::parse(&lines[0]).expect("first line parses");
    match trace {
        Response::Trace { trace_id, json } => {
            assert_eq!(trace_id, 0xdead_beef);
            assert!(json.starts_with("{\"traceEvents\":["));
        }
        other => panic!("expected TRACE first, got {other:?}"),
    }
    assert!(matches!(
        Response::parse(&lines[1]).expect("second line parses"),
        Response::Ok(_)
    ));
    // An untraced probe answers with exactly one line.
    let lines = raw_lines(&handle, "PROBE 1 0.3 ACGTAC", 1);
    assert!(matches!(
        Response::parse(&lines[0]).expect("answer parses"),
        Response::Ok(_)
    ));
    handle.shutdown();
}
