//! Malformed-input robustness for the wire protocol and the
//! coordinator: a corpus of truncated, garbled, and adversarial reply
//! lines must come back as positioned `Err` strings — never a panic —
//! and a live shard that answers garbage must count as a failed shard
//! (toward quarantine), never poison the coordinator.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use usj_fault::shield;
use usj_model::Alphabet;
use usj_serve::{
    coordinate, parse_request, Client, ClientConfig, CoordConfig, ProbeOutcome, Response,
    ShardSpec, ShardState,
};

fn lock() -> MutexGuard<'static, ()> {
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    shield::install();
    TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Every reply line a hostile or half-dead shard might emit. Parsing
/// must reject each one with an `Err` — no panics, no silent `Ok`.
const REPLY_CORPUS: &[&str] = &[
    "",
    " ",
    "OK",
    "OK x",
    "OK 2 1",
    "OK 1 1:nothex",
    "OK 1 1:3ff0000000000000 2:3ff0000000000000",
    "OK 18446744073709551616 1:3ff0000000000000",
    "DEGRADED",
    "DEGRADED x",
    "DEGRADED 2 1",
    "DEGRADED 1 1 2",
    "DEGRADED shards=",
    "DEGRADED shards=1 1 4",
    "DEGRADED shards=a/b 1 4",
    "DEGRADED shards=2/1 1 4",
    "DEGRADED shards=0/0 0",
    "DEGRADED shards=1/2",
    "BUSY",
    "BUSY retry_after_ms=",
    "BUSY retry_after_ms=soon",
    "DEADLINE",
    "DEADLINE elapsed_ms=late",
    "HEALTH",
    "HEALTH level=9 queue=x inflight=0",
    "METRICS \\q",
    "TRACE",
    "TRACE trace_id=xyz {}",
    "SHARDS",
    "SHARDS x",
    "SHARDS 2 0:healthy",
    "SHARDS 1 0:exploded",
    "SHARDS 1 1:healthy",
    "SHARDS 1 0healthy",
    "WAT 3",
    "ok 1 1:3ff0000000000000",
    "OK\u{0} 1",
    "\u{7f}\u{7f}\u{7f}",
    "OK 1 1:3ff0000000000000 trailing",
];

#[test]
fn malformed_reply_corpus_is_rejected_without_panicking() {
    for line in REPLY_CORPUS {
        match Response::parse(line) {
            Err(msg) => assert!(
                !msg.is_empty(),
                "rejection must say what broke: {line:?}"
            ),
            Ok(parsed) => panic!("corpus line {line:?} parsed as {parsed:?}"),
        }
    }
}

#[test]
fn malformed_request_corpus_is_rejected_without_panicking() {
    let corpus = [
        "",
        "PROBE",
        "PROBE 1",
        "PROBE 1 0.3",
        "PROBE k 0.3 ACGT",
        "PROBE 1 tau ACGT",
        "PROBE 1 0.3 deadline_ms= ACGT",
        "PROBE 1 0.3 deadline_ms=soon ACGT",
        "PROBE 1 0.3 trace_id=xyz ACGT",
        "PROBE 1 0.3 trace_id=0000000000000000 ACGT",
        "PROBE 1 1.5 ACGT",
        "probe 1 0.3 ACGT",
        "NOPE",
    ];
    for line in corpus {
        match parse_request(line) {
            Err(msg) => assert!(!msg.is_empty(), "{line:?}"),
            Ok(parsed) => panic!("request corpus line {line:?} parsed as {parsed:?}"),
        }
    }
}

/// A fake shard: accepts connections and answers every request line
/// with the next entry from a garbage script.
fn garbage_shard(replies: &'static [&'static str]) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake shard");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let mut served = 0usize;
        for conn in listener.incoming() {
            let Ok(conn) = conn else { continue };
            let _ = conn.set_read_timeout(Some(Duration::from_secs(2)));
            let Ok(read_half) = conn.try_clone() else {
                continue;
            };
            let mut reader = BufReader::new(read_half);
            let mut writer = conn;
            let mut line = String::new();
            if reader.read_line(&mut line).is_ok() && !line.is_empty() {
                let reply = replies[served % replies.len()];
                served += 1;
                let _ = writer.write_all(reply.as_bytes());
                let _ = writer.write_all(b"\n");
                let _ = writer.flush();
            }
        }
    });
    addr
}

#[test]
fn garbage_speaking_shard_is_quarantined_and_never_panics_the_coordinator() {
    let _guard = lock();
    let addr = garbage_shard(&[
        "OK banana",
        "WAT 3",
        "DEGRADED shards=5/2 1 3",
        "OK 2 1:3ff0000000000000",
    ]);
    let coord = coordinate(
        vec![ShardSpec {
            addr: addr.to_string(),
            band: Some((1, 64)),
        }],
        Alphabet::dna(),
        CoordConfig {
            k: 1,
            tau: 0.3,
            strict: false,
            quarantine_after: 2,
            quarantine_cooldown: Duration::from_secs(30),
            default_deadline: Some(Duration::from_millis(500)),
            client: ClientConfig {
                max_retries: 0,
                ..ClientConfig::default()
            },
            ..CoordConfig::default()
        },
    )
    .expect("bind coordinator");
    let mut client = Client::new(coord.addr().to_string(), ClientConfig::default());
    // Each garbled reply is a protocol failure for that shard: the
    // degraded-mode answer is an *empty marked* result (0/1 shards),
    // never a fabricated hit list and never a panic.
    for round in 0..2 {
        match client.probe(1, 0.3, "ACGT").expect("marked partial") {
            ProbeOutcome::Degraded { ids, shards } => {
                assert!(ids.is_empty(), "round {round}: no shard answered sanely");
                assert_eq!(shards, Some((0, 1)), "round {round}");
            }
            other => panic!("round {round}: expected marked partial, got {other:?}"),
        }
    }
    // Two consecutive protocol failures count toward quarantine exactly
    // like connection loss.
    assert_eq!(
        client.shards().expect("SHARDS"),
        vec![ShardState::Quarantined]
    );
    // The coordinator itself is still fully alive.
    let (level, _, _) = client.health().expect("health");
    assert_eq!(level, 2, "whole fleet quarantined");
    coord.shutdown();
}
