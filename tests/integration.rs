//! Cross-crate integration tests: generated datasets through the full
//! public API, validated against the possible-world oracle.

use uncertain_join::datagen::{DatasetJson, DatasetKind, DatasetSpec};
use uncertain_join::join::{
    oracle_self_join, IndexedCollection, JoinConfig, Pipeline, SimilarityJoin, VerifierKind,
};
use uncertain_join::model::{Alphabet, UncertainString};
use uncertain_join::verify::exact_similarity_prob_capped;

/// A small generated dataset whose world counts stay oracle-friendly.
fn small_dataset(kind: DatasetKind, n: usize, seed: u64) -> uncertain_join::datagen::Dataset {
    let mut spec = DatasetSpec::new(kind, n, seed);
    spec.uncertainty.theta = 0.12;
    spec.uncertainty.gamma = 3;
    spec.generate()
}

#[test]
fn generated_dblp_join_matches_oracle() {
    let ds = small_dataset(DatasetKind::Dblp, 40, 1);
    let (k, tau) = (2usize, 0.1001f64);
    let expected: Vec<(u32, u32)> = oracle_self_join(&ds.strings, k, tau)
        .iter()
        .map(|p| (p.left, p.right))
        .collect();
    for pipeline in Pipeline::all() {
        let config = JoinConfig::new(k, tau)
            .with_pipeline(pipeline)
            .with_early_stop(false);
        let result = SimilarityJoin::new(config, ds.alphabet.size()).self_join(&ds.strings);
        let got: Vec<(u32, u32)> = result.pairs.iter().map(|p| (p.left, p.right)).collect();
        assert_eq!(got, expected, "{pipeline:?}");
    }
}

#[test]
fn generated_protein_join_matches_oracle() {
    let ds = small_dataset(DatasetKind::Protein, 30, 2);
    let (k, tau) = (4usize, 0.0101f64);
    let expected: Vec<(u32, u32)> = oracle_self_join(&ds.strings, k, tau)
        .iter()
        .map(|p| (p.left, p.right))
        .collect();
    let config = JoinConfig::new(k, tau).with_early_stop(false);
    let result = SimilarityJoin::new(config, ds.alphabet.size()).self_join(&ds.strings);
    let got: Vec<(u32, u32)> = result.pairs.iter().map(|p| (p.left, p.right)).collect();
    assert_eq!(got, expected);
}

#[test]
fn verifier_kinds_agree_on_generated_data() {
    let ds = small_dataset(DatasetKind::Dblp, 50, 3);
    let mut reference: Option<Vec<(u32, u32)>> = None;
    for kind in [
        VerifierKind::LazyTrie,
        VerifierKind::Trie,
        VerifierKind::Naive,
    ] {
        let config = JoinConfig::new(2, 0.1).with_verifier(kind);
        let result = SimilarityJoin::new(config, ds.alphabet.size()).self_join(&ds.strings);
        let got: Vec<(u32, u32)> = result.pairs.iter().map(|p| (p.left, p.right)).collect();
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(&got, want, "{kind:?}"),
        }
    }
}

#[test]
fn search_is_consistent_with_join() {
    // Every join pair (i, j) must be rediscovered by searching string i
    // against the full collection (and vice versa).
    let ds = small_dataset(DatasetKind::Dblp, 35, 4);
    let config = JoinConfig::new(2, 0.1);
    let join_result =
        SimilarityJoin::new(config.clone(), ds.alphabet.size()).self_join(&ds.strings);
    let collection = IndexedCollection::build(config, ds.alphabet.size(), ds.strings.clone());
    for pair in &join_result.pairs {
        let hits = collection.search(&ds.strings[pair.left as usize]);
        assert!(
            hits.iter().any(|h| h.id == pair.right),
            "search({}) must find {}",
            pair.left,
            pair.right
        );
    }
}

#[test]
fn search_probe_matches_itself() {
    let ds = small_dataset(DatasetKind::Protein, 25, 5);
    let collection = IndexedCollection::build(
        JoinConfig::new(2, 0.5),
        ds.alphabet.size(),
        ds.strings.clone(),
    );
    for (i, s) in ds.strings.iter().enumerate() {
        let hits = collection.search(s);
        assert!(
            hits.iter().any(|h| h.id == i as u32),
            "string {i} must match itself"
        );
    }
}

#[test]
fn dataset_json_roundtrip_preserves_join_results() {
    let ds = small_dataset(DatasetKind::Dblp, 30, 6);
    let json = DatasetJson::from(&ds).to_json();
    let back = DatasetJson::from_json(&json)
        .unwrap()
        .into_dataset()
        .unwrap();
    let config = JoinConfig::new(2, 0.1);
    let a = SimilarityJoin::new(config.clone(), ds.alphabet.size()).self_join(&ds.strings);
    let b = SimilarityJoin::new(config, back.alphabet.size()).self_join(&back.strings);
    assert_eq!(
        a.pairs
            .iter()
            .map(|p| (p.left, p.right))
            .collect::<Vec<_>>(),
        b.pairs
            .iter()
            .map(|p| (p.left, p.right))
            .collect::<Vec<_>>()
    );
}

#[test]
fn reported_probabilities_are_exact_in_exact_mode() {
    let ds = small_dataset(DatasetKind::Dblp, 25, 7);
    let config = JoinConfig::new(2, 0.1).with_early_stop(false);
    let result = SimilarityJoin::new(config, ds.alphabet.size()).self_join(&ds.strings);
    for pair in &result.pairs {
        let exact = exact_similarity_prob_capped(
            &ds.strings[pair.left as usize],
            &ds.strings[pair.right as usize],
            2,
            1 << 22,
        )
        .expect("worlds within cap for this dataset");
        assert!(
            (pair.prob - exact).abs() < 1e-9,
            "pair ({}, {}): reported {} exact {}",
            pair.left,
            pair.right,
            pair.prob,
            exact
        );
    }
}

#[test]
fn facade_parse_and_join_roundtrip() {
    // The README quickstart, as a test.
    let dna = Alphabet::dna();
    let strings: Vec<UncertainString> = [
        "ACGT{(A,0.6),(T,0.4)}CCA",
        "ACG{(T,0.9),(G,0.1)}ACCA",
        "TTTTGGGG",
    ]
    .iter()
    .map(|t| UncertainString::parse(t, &dna).unwrap())
    .collect();
    let result = SimilarityJoin::new(JoinConfig::new(2, 0.3), dna.size()).self_join(&strings);
    assert_eq!(result.pairs.len(), 1);
    assert_eq!((result.pairs[0].left, result.pairs[0].right), (0, 1));
}

#[test]
fn self_appended_datasets_still_join_correctly() {
    let ds = small_dataset(DatasetKind::Dblp, 20, 8);
    let grown = ds.self_appended(1, 6);
    let (k, tau) = (2usize, 0.1001f64);
    let expected: Vec<(u32, u32)> = oracle_self_join(&grown.strings, k, tau)
        .iter()
        .map(|p| (p.left, p.right))
        .collect();
    let config = JoinConfig::new(k, tau).with_early_stop(false);
    let result = SimilarityJoin::new(config, grown.alphabet.size()).self_join(&grown.strings);
    let got: Vec<(u32, u32)> = result.pairs.iter().map(|p| (p.left, p.right)).collect();
    assert_eq!(got, expected);
}
