#!/usr/bin/env bash
# Dynamic-analysis gate for the probability and concurrency kernels.
#
#  * Miri (nightly) interprets the unit tests of the index-arithmetic-heavy
#    probability kernels — usj-cdf (banded DP over flattened rows),
#    usj-qgram (equivalent-set construction), usj-editdist (banded /
#    bit-parallel DPs), usj-simd (whose dispatcher pins itself to the
#    scalar fallbacks under cfg(miri), so the reference kernels get the
#    full UB check) — and catches undefined behaviour that no normal
#    test run can see.
#  * A forced-scalar leg re-runs the SIMD parity suites and every
#    SIMD-consuming kernel crate with USJ_NO_SIMD=1, proving the scalar
#    fallback path stays green on a vector-capable host (the CI `simd`
#    job runs the same pair of legs).
#  * ThreadSanitizer (nightly, -Zbuild-std) runs the parallel driver's
#    differential tests and catches data races that the Relaxed-ordering
#    batch cursor or a future refactor could introduce; the tests also
#    re-assert byte-identical output under TSan's altered interleavings.
#    The concurrent-probes suite drives the shared segment interner from
#    many reader threads (the interner is frozen after build; TSan would
#    flag any write slipping into the probe path). The same
#    instrumentation covers usj-serve's overload and fault-plan server
#    tests (accept/worker/client threads over one shared index).
#
# Both halves need rustup pieces that may be missing locally (a nightly
# toolchain, the miri and rust-src components). By default a missing
# prerequisite SKIPs that half with a clear notice and the script still
# exits 0, so it is safe to run on any machine; CI sets SANITIZE_STRICT=1
# to make missing prerequisites fatal there.
#
# Usage: sanitize.sh [all|kernels|serve|coord|persist] — `all` (default)
# runs every check; `kernels` runs Miri plus the parallel-driver TSan
# blocks; `serve` runs the single-node usj-serve TSan block; `coord`
# runs the coordinator/shard-fleet TSan block; and `persist` runs Miri
# and TSan over the snapshot / recovery-ladder suites. The sanitize,
# serve, coordinator, and persist CI jobs use their matching targets so
# no suite is instrumented twice.

set -uo pipefail
cd "$(dirname "$0")/.."

ONLY="${1:-all}"
case "$ONLY" in
    all | kernels | serve | coord | persist) ;;
    *)
        printf 'usage: %s [all|kernels|serve|coord|persist]\n' "$0" >&2
        exit 2
        ;;
esac

STRICT="${SANITIZE_STRICT:-0}"
FAILED=0
SKIPPED=0
HOST=""

note() { printf '==> %s\n' "$*"; }

skip_or_die() {
    if [ "$STRICT" = "1" ]; then
        note "FATAL (SANITIZE_STRICT=1): $*"
        exit 1
    fi
    note "SKIP: $*"
    SKIPPED=1
}

have_nightly() {
    rustup toolchain list 2>/dev/null | grep -q '^nightly' && return 0
    note "installing nightly toolchain (minimal profile)"
    rustup toolchain install nightly --profile minimal >/dev/null 2>&1
}

have_component() {
    rustup component list --toolchain nightly --installed 2>/dev/null | grep -q "^$1" \
        && return 0
    note "installing nightly component $1"
    rustup component add --toolchain nightly "$1" >/dev/null 2>&1
}

# ---- Miri over the probability kernels ----------------------------------
run_miri() {
    if ! have_nightly; then
        skip_or_die "no nightly toolchain and cannot install one (Miri not run)"
        return
    fi
    if ! have_component miri; then
        skip_or_die "miri component unavailable for nightly (Miri not run)"
        return
    fi
    note "Miri: usj-cdf / usj-qgram / usj-editdist / usj-simd unit tests"
    if ! cargo +nightly miri test -p usj-cdf -p usj-qgram -p usj-editdist -p usj-simd --lib; then
        note "FAIL: Miri found a problem"
        FAILED=1
    fi
    note "Miri: usj-simd scalar==dispatch parity suites (dispatch is scalar under Miri)"
    if ! cargo +nightly miri test -p usj-simd --test parity --test forced_scalar; then
        note "FAIL: Miri found a problem in the scalar fallbacks"
        FAILED=1
    fi
}

# ---- Forced-scalar leg (no nightly pieces needed) -----------------------
run_forced_scalar() {
    note "forced-scalar: USJ_NO_SIMD=1 over the SIMD-consuming kernels"
    # The differential suites compare dispatch against the scalar
    # reference; with USJ_NO_SIMD=1 the dispatcher must select scalar on
    # any host, and every consumer crate must behave identically.
    if ! USJ_NO_SIMD=1 cargo test -q \
        -p usj-simd -p usj-qgram -p usj-cdf -p usj-editdist -p usj-core; then
        note "FAIL: forced-scalar leg failed"
        FAILED=1
    fi
}

# ---- ThreadSanitizer prerequisites (shared by both TSan blocks) ---------
tsan_prereqs() {
    HOST="$(rustc -vV | sed -n 's/^host: //p')"
    case "$HOST" in
        *-linux-*) ;;
        *)
            skip_or_die "ThreadSanitizer needs a Linux target (host: $HOST)"
            return 1
            ;;
    esac
    if ! have_nightly; then
        skip_or_die "no nightly toolchain and cannot install one (TSan not run)"
        return 1
    fi
    if ! have_component rust-src; then
        skip_or_die "rust-src component unavailable for nightly (TSan not run)"
        return 1
    fi
}

# ---- ThreadSanitizer over the parallel driver ---------------------------
run_tsan() {
    tsan_prereqs || return 0
    note "TSan: parallel driver differential tests (-Zsanitizer=thread)"
    # -Zbuild-std rebuilds std with TSan instrumentation so std::thread's
    # own synchronisation is visible to the race detector.
    if ! RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target "$HOST" \
        -p usj-core --test differential -- --test-threads 1; then
        note "FAIL: ThreadSanitizer found a problem"
        FAILED=1
    fi
    note "TSan: panic isolation / checkpoint-resume tests (-Zsanitizer=thread)"
    # The fault-tolerant driver unwinds worker panics across the
    # work-stealing cursor and cancellation flag; TSan checks that the
    # recovery paths (batch retry, quarantine, deadline cancel) are as
    # race-free as the happy path. Single-threaded test order because the
    # injection plans are process-global.
    if ! RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target "$HOST" \
        -p usj-core --test fault_tolerance -- --test-threads 1; then
        note "FAIL: ThreadSanitizer found a problem in the fault paths"
        FAILED=1
    fi
    note "TSan: concurrent probes through the shared segment interner"
    # Many reader threads resolve interned segment ids while others run
    # full cached probes against the same frozen index; any write into
    # the interner after build would be a race TSan can see.
    if ! RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target "$HOST" \
        -p usj-core --test concurrent_probes -- --test-threads 1; then
        note "FAIL: ThreadSanitizer found a problem in the concurrent probe path"
        FAILED=1
    fi
}

# ---- ThreadSanitizer over the query server ------------------------------
run_tsan_serve() {
    tsan_prereqs || return 0
    note "TSan: usj-serve overload / fault-plan server tests (-Zsanitizer=thread)"
    # The server shares one immutable index across accept, worker, and
    # client threads while the degradation controller mixes atomics with a
    # mutexed latency ring; re-run the whole overload suite (shedding,
    # injected panics, deadline aborts, wire-driven drain) under TSan's
    # altered interleavings. Single-threaded test order because the fault
    # injection plans are process-global.
    if ! RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target "$HOST" \
        -p usj-serve --lib --test overload --test metrics_roundtrip \
        -- --test-threads 1; then
        note "FAIL: ThreadSanitizer found a problem in usj-serve"
        FAILED=1
    fi
}

# ---- Miri + TSan over the snapshot / recovery-ladder suites -------------
run_persist() {
    if have_nightly && have_component miri; then
        note "Miri: snapshot encode/decode + corruption-ladder tests"
        # The snapshot codec is the one place the index is rebuilt from
        # raw little-endian bytes; Miri checks every decode path —
        # including the salvage walk over deliberately corrupted images —
        # for UB. -Zmiri-disable-isolation because the suites exercise
        # real tempfile writes, fsyncs, and renames.
        if ! MIRIFLAGS="-Zmiri-disable-isolation" \
            cargo +nightly miri test -p usj-core \
            --test snapshot_persistence --test checkpoint_corruption; then
            note "FAIL: Miri found a problem in the snapshot codec"
            FAILED=1
        fi
    else
        skip_or_die "nightly+miri unavailable (snapshot Miri leg not run)"
    fi
    tsan_prereqs || return 0
    note "TSan: warm-restart serving and background rebuild (-Zsanitizer=thread)"
    # serve_from_snapshot hands a degraded superset to worker threads
    # while a maintenance thread rebuilds the salvage-failed bands and
    # swaps the repaired collection in behind an RwLock; TSan checks the
    # readmission handoff under altered interleavings. Single-threaded
    # test order because failpoint plans are process-global.
    if ! RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target "$HOST" \
        -p usj-serve --test warm_restart -- --test-threads 1; then
        note "FAIL: ThreadSanitizer found a problem in warm-restart serving"
        FAILED=1
    fi
}

# ---- ThreadSanitizer over the scatter-gather coordinator ----------------
run_tsan_coord() {
    tsan_prereqs || return 0
    note "TSan: coordinator scatter-gather / kill-a-shard tests (-Zsanitizer=thread)"
    # The coordinator crosses more threads than the single-node server:
    # gather loops join detached per-shard dispatch threads through mpsc
    # channels while hedges race the primary attempt, health tracking
    # mixes a mutexed table with the stop flag, and the soak test kills a
    # live proxy mid-probe. Single-threaded test order because the fault
    # injection plans are process-global.
    if ! RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target "$HOST" \
        -p usj-serve --test coordinator --test proto_malformed \
        -- --test-threads 1; then
        note "FAIL: ThreadSanitizer found a problem in the coordinator"
        FAILED=1
    fi
}

if [ "$ONLY" = "all" ] || [ "$ONLY" = "kernels" ]; then
    run_miri
    run_forced_scalar
    run_tsan
fi
if [ "$ONLY" = "all" ] || [ "$ONLY" = "serve" ]; then
    run_tsan_serve
fi
if [ "$ONLY" = "all" ] || [ "$ONLY" = "coord" ]; then
    run_tsan_coord
fi
if [ "$ONLY" = "all" ] || [ "$ONLY" = "persist" ]; then
    run_persist
fi

if [ "$FAILED" = "1" ]; then
    note "sanitize: FAILED"
    exit 1
fi
if [ "$SKIPPED" = "1" ]; then
    note "sanitize: passed (with skips — set SANITIZE_STRICT=1 to forbid)"
else
    note "sanitize: all checks passed"
fi
