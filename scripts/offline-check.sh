#!/usr/bin/env bash
# Offline compile-and-test check for the dependency-free subset of the
# workspace.
#
# The full workspace declares external dev-dependencies (rand, proptest,
# serde, criterion). On a machine with no network access and no cargo
# registry cache, `cargo build` cannot even resolve the graph — including
# for crates that never use those dependencies. This script stages the
# std-only crates (everything except datagen/cli/bench) into
# .buildcheck/, strips the unfetchable dev-dependencies, and runs their
# unit tests with `--offline`.
#
# This is a subset check, not a replacement for scripts/verify.sh: it
# covers usj-model/editdist/qgram/freq/cdf/verify/core/eed/obs (all the
# algorithmic code), usj-serve, and usj-tidy — including tidy's fixture
# and workspace integration suites, with USJ_TIDY_ROOT pointed at the
# real repo root so the staged copy lints the actual tree — but not the
# CLI, datagen, or bench binaries.

set -euo pipefail
cd "$(dirname "$0")/.."

CRATES=(fault simd model editdist qgram freq cdf verify core eed obs tidy serve)

rm -rf .buildcheck
mkdir -p .buildcheck/crates
for c in "${CRATES[@]}"; do
    mkdir -p ".buildcheck/crates/$c"
    cp -r "crates/$c/src" ".buildcheck/crates/$c/src"
    # Strip [dev-dependencies]; integration tests/ and benches/ are not
    # copied, so only in-src #[cfg(test)] modules build.
    awk 'BEGIN{skip=0} /^\[dev-dependencies\]/{skip=1;next} /^\[/{skip=0} !skip' \
        "crates/$c/Cargo.toml" > ".buildcheck/crates/$c/Cargo.toml"
done

# Std-only integration suites (they use only staged sibling crates, no
# external dev-dependencies) ride along; the proptest/rand-based suites
# next to them deliberately do not.
mkdir -p .buildcheck/crates/core/tests .buildcheck/crates/model/tests \
    .buildcheck/crates/serve/tests
cp crates/core/tests/fault_tolerance.rs .buildcheck/crates/core/tests/
cp crates/core/tests/checkpoint_corruption.rs .buildcheck/crates/core/tests/
cp crates/core/tests/snapshot_persistence.rs .buildcheck/crates/core/tests/
cp crates/core/tests/concurrent_probes.rs .buildcheck/crates/core/tests/
cp crates/serve/tests/overload.rs .buildcheck/crates/serve/tests/
cp crates/serve/tests/metrics_roundtrip.rs .buildcheck/crates/serve/tests/
cp crates/serve/tests/coordinator.rs .buildcheck/crates/serve/tests/
cp crates/serve/tests/proto_malformed.rs .buildcheck/crates/serve/tests/
cp crates/serve/tests/warm_restart.rs .buildcheck/crates/serve/tests/
cp crates/model/tests/malformed.rs .buildcheck/crates/model/tests/
cp -r crates/model/tests/corpus .buildcheck/crates/model/tests/corpus

# usj-simd's differential parity suites are std-only; the forced-scalar
# leg needs its own test binary (OnceLock level caching), which riding
# along here preserves.
mkdir -p .buildcheck/crates/simd/tests
cp crates/simd/tests/parity.rs crates/simd/tests/forced_scalar.rs \
    .buildcheck/crates/simd/tests/

# usj-tidy's integration suites are std-only too; point the workspace
# self-check at the real tree (the staged copy has no tidy.allow).
mkdir -p .buildcheck/crates/tidy/tests
cp crates/tidy/tests/tidy_fixtures.rs crates/tidy/tests/workspace_clean.rs \
    crates/tidy/tests/tokenizer_props.rs crates/tidy/tests/emit_json.rs \
    .buildcheck/crates/tidy/tests/
cp -r crates/tidy/tests/fixtures .buildcheck/crates/tidy/tests/fixtures
export USJ_TIDY_ROOT="$PWD"

# The bench-trajectory binary is std-only (usj-core + usj-obs); stage it
# under a synthetic manifest so the offline subset compile-checks it and
# can regenerate BENCH_baseline.json without the registry-dependent
# usj-bench library.
mkdir -p .buildcheck/crates/benchbin/src
cp crates/bench/src/bin/bench_kernels.rs .buildcheck/crates/benchbin/src/main.rs
cat > .buildcheck/crates/benchbin/Cargo.toml <<'EOF'
[package]
name = "bench-kernels-offline"
description = "offline staging of usj-bench's bench_kernels binary"
version.workspace = true
edition.workspace = true
license.workspace = true
repository.workspace = true

[[bin]]
name = "bench_kernels"
path = "src/main.rs"

[dependencies]
usj-core.workspace = true
usj-obs.workspace = true
EOF

# In-src test modules of these two crates use sibling crates that are
# themselves stageable — restore just those dev-dependencies.
printf '\n[dev-dependencies]\nusj-editdist.workspace = true\n' \
    >> .buildcheck/crates/model/Cargo.toml
printf '\n[dev-dependencies]\nusj-core.workspace = true\n' \
    >> .buildcheck/crates/eed/Cargo.toml

cat > .buildcheck/Cargo.toml <<'EOF'
[workspace]
members = ["crates/*"]
resolver = "2"

[workspace.package]
version = "0.1.0"
edition = "2021"
license = "MIT OR Apache-2.0"
repository = "https://github.com/uncertain-join/uncertain-join"
rust-version = "1.75"

[workspace.dependencies]
usj-obs = { path = "crates/obs" }
usj-fault = { path = "crates/fault" }
usj-simd = { path = "crates/simd" }
usj-model = { path = "crates/model" }
usj-editdist = { path = "crates/editdist" }
usj-qgram = { path = "crates/qgram" }
usj-freq = { path = "crates/freq" }
usj-cdf = { path = "crates/cdf" }
usj-verify = { path = "crates/verify" }
usj-core = { path = "crates/core" }
usj-eed = { path = "crates/eed" }
usj-serve = { path = "crates/serve" }
EOF

cd .buildcheck
cargo test --offline -q "$@"
