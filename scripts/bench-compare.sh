#!/usr/bin/env bash
# Gate a fresh kernel-benchmark report against a committed baseline.
#
#   scripts/bench-compare.sh <baseline.json> <new.json> [threshold-pct]
#
# Exits nonzero when any bench's median regressed beyond the threshold
# (default 15%). Thin wrapper over `bench_kernels compare` so CI and
# humans run the identical comparison; prefers an already-built release
# binary and falls back to cargo.

set -euo pipefail
cd "$(dirname "$0")/.."

if [ "$#" -lt 2 ]; then
    echo "usage: $0 <baseline.json> <new.json> [threshold-pct]" >&2
    exit 2
fi
base="$1"
new="$2"
threshold="${3:-15}"

if [ -x target/release/bench_kernels ]; then
    exec target/release/bench_kernels compare "$base" "$new" --threshold "$threshold"
fi
exec cargo run -q --release -p usj-bench --bin bench_kernels -- \
    compare "$base" "$new" --threshold "$threshold"
