#!/usr/bin/env bash
# Full verification gate: build, test, format.
#
# Requires network access (or a populated cargo registry cache) the first
# time, because the workspace's external dependencies (rand, serde,
# serde_json, proptest, criterion) must be fetched; afterwards add
# `--offline` to every cargo call. On a machine that cannot fetch at all,
# use scripts/offline-check.sh instead — it builds and tests the
# dependency-free subset of the workspace (all the algorithmic crates).

set -euo pipefail
cd "$(dirname "$0")/.."

# Project-policy lints first (hot-path panic freedom, ordering
# justifications, metric registration, budget loops, failpoint coverage,
# lock discipline, dep allowlist, doc drift) — see crates/tidy. Tidy
# builds in seconds and catches most policy mistakes, so it fails the
# gate before the full-workspace build spends minutes.
cargo run -q -p usj-tidy
cargo build --release --workspace
cargo test -q --workspace
cargo clippy --all-targets -- -D warnings
cargo fmt --check
