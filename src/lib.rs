//! # uncertain-join
//!
//! Similarity joins for character-level **uncertain strings** under
//! (k,τ)-matching semantics — a Rust implementation of *Similarity Joins for
//! Uncertain Strings* (Patil & Shah, SIGMOD 2014).
//!
//! Given a collection of uncertain strings, an edit-distance threshold `k`
//! and a probability threshold `τ`, the join reports every pair `(R, S)`
//! with `Pr(ed(R, S) ≤ k) > τ`, where the probability ranges over the
//! possible worlds of both strings — without materialising those
//! (exponentially many) worlds.
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`model`] | alphabet, per-position distributions, [`model::UncertainString`], possible worlds |
//! | [`editdist`] | deterministic edit distance (full / banded / prefix-pruning DP), frequency vectors |
//! | [`qgram`] | partition scheme, position-aware substring selection, segment match probabilities `α_x`, probabilistic pruning (Theorems 1–2) |
//! | [`freq`] | frequency-distance filter for uncertain strings (Lemma 6, Theorem 3) |
//! | [`cdf`] | lower/upper CDF bounds on `Pr(ed ≤ k)` via banded DP (Theorem 4) |
//! | [`verify`] | exact verification: instance tries with active-node sets, naive baseline, brute-force oracle |
//! | [`join`] | segment inverted indices and the join driver with the QFCT/QCT/QFT/FCT pipelines |
//! | [`eed`] | expected-edit-distance baseline join (Jestes et al., SIGMOD 2010) |
//! | [`datagen`] | seeded synthetic dataset generators following the paper's recipe |
//!
//! ## Quickstart
//!
//! ```
//! use uncertain_join::model::{Alphabet, UncertainString};
//! use uncertain_join::join::{JoinConfig, SimilarityJoin};
//!
//! let dna = Alphabet::dna();
//! let strings: Vec<UncertainString> = [
//!     "ACGT{(A,0.6),(T,0.4)}CCA",
//!     "ACG{(T,0.9),(G,0.1)}ACCA",
//!     "TTTTGGGG",
//! ]
//! .iter()
//! .map(|t| UncertainString::parse(t, &dna).unwrap())
//! .collect();
//!
//! let config = JoinConfig::new(2, 0.3); // k = 2, τ = 0.3
//! let result = SimilarityJoin::new(config, dna.size()).self_join(&strings);
//! for pair in &result.pairs {
//!     println!("{} ~ {} with Pr(ed ≤ 2) = {:.3}", pair.left, pair.right, pair.prob);
//! }
//! ```

#![warn(missing_docs)]

pub use usj_cdf as cdf;
pub use usj_core as join;
pub use usj_core::obs;
pub use usj_datagen as datagen;
pub use usj_editdist as editdist;
pub use usj_eed as eed;
pub use usj_freq as freq;
pub use usj_model as model;
pub use usj_qgram as qgram;
pub use usj_serve as serve;
pub use usj_verify as verify;

pub use usj_core::{JoinConfig, JoinResult, SimilarityJoin};
pub use usj_model::{Alphabet, UncertainString};
